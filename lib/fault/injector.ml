(* The per-simulation fault injector. Like Sj_obs.Recorder it hangs off
   the simulation's Sim_ctx through an extensible slot ([Sim_ctx.fault]),
   so the dispatch layer can consult it without depending on this
   library's users, and two machines in two domains each fire their own
   plan with no shared mutable state.

   Hook discipline mirrors the observability emission guard: call sites
   match on [active ctx] and do all injection work inside the [Some]
   branch, so a run with no plan installed executes the exact same
   instructions as before this module existed — zero cost, bit-identical
   cycles and traces. *)

module Sim_ctx = Sj_util.Sim_ctx
module Rng = Sj_util.Rng

exception Killed of { pid : int; op : string }

(* Per-fault progress: a plan fault plus whether it already fired and,
   for storms, how many injections remain. *)
type slot = {
  fault : Plan.fault;
  mutable remaining : int; (* storms: injections left; others: unused *)
  mutable done_ : bool;
}

type t = {
  seed : int;
  rng : Rng.t;
  slots : slot list;
  calls : (int * int, int) Hashtbl.t; (* (pid, nr) -> invocations so far *)
  mutable grows : int;
  mutable saves : int;
  mutable fired_rev : Plan.fault list;
}

type Sim_ctx.fault += Injector of t

type decision = Pass | Kill | Would_block

let create ?(seed = 42) plan =
  let slot f =
    let remaining =
      match f with Plan.Would_block_storm { count; _ } -> count | _ -> 0
    in
    { fault = f; remaining; done_ = false }
  in
  {
    seed;
    rng = Rng.create ~seed;
    slots = List.map slot plan;
    calls = Hashtbl.create 16;
    grows = 0;
    saves = 0;
    fired_rev = [];
  }

let attach ctx t = Sim_ctx.set_fault ctx (Some (Injector t))

let of_ctx ctx =
  match Sim_ctx.fault ctx with Some (Injector t) -> Some t | _ -> None

let active = of_ctx
let seed t = t.seed
let plan t = List.map (fun s -> s.fault) t.slots
let fired t = List.rev t.fired_rev
let record t f = t.fired_rev <- f :: t.fired_rev

(* Called by the dispatch layer before an entry body runs. [held] is the
   set of segment ids the invoking process currently holds locks on.
   Kills take priority over storms; at most one fault fires per call. *)
let on_syscall t ~pid ~nr ~held =
  let key = (pid, nr) in
  let count = 1 + (try Hashtbl.find t.calls key with Not_found -> 0) in
  Hashtbl.replace t.calls key count;
  let fire s = s.done_ <- true; record t s.fault in
  let kill =
    List.find_opt
      (fun s ->
        (not s.done_)
        &&
        match s.fault with
        | Plan.Kill_at_syscall k ->
          k.pid = pid && k.nr = nr && k.occurrence = count
        | Plan.Kill_holding_lock k -> k.pid = pid && List.mem k.sid held
        | _ -> false)
      t.slots
  in
  match kill with
  | Some s -> fire s; Kill
  | None -> (
    let storm =
      List.find_opt
        (fun s ->
          s.remaining > 0
          &&
          match s.fault with
          | Plan.Would_block_storm w -> w.pid = pid && w.nr = nr
          | _ -> false)
        t.slots
    in
    match storm with
    | Some s ->
      s.remaining <- s.remaining - 1;
      if not s.done_ then fire s;
      Would_block
    | None -> Pass)

(* Called once per segment grow; [true] means the grow must fail with
   [Capacity]. *)
let on_grow t =
  t.grows <- t.grows + 1;
  match
    List.find_opt
      (fun s ->
        (not s.done_)
        && match s.fault with Plan.Grow_fail g -> g.nth = t.grows | _ -> false)
      t.slots
  with
  | Some s -> s.done_ <- true; record t s.fault; true
  | None -> false

(* Called with each complete persist image before it is handed to the
   caller; a matching Torn_write truncates it at the planned (or
   seeded-random) offset, simulating a writer that died mid-write. The
   fired log records the resolved offset so a failing seed can be
   replayed with an explicit [at_byte]. *)
let tear_save t img =
  t.saves <- t.saves + 1;
  match
    List.find_opt
      (fun s ->
        (not s.done_)
        && match s.fault with Plan.Torn_write w -> w.save = t.saves | _ -> false)
      t.slots
  with
  | None -> img
  | Some s ->
    s.done_ <- true;
    let len = Bytes.length img in
    let at =
      match s.fault with
      | Plan.Torn_write { at_byte; _ } when at_byte >= 0 && at_byte < len ->
        at_byte
      | _ -> 1 + Rng.int t.rng (max 1 (len - 1))
    in
    record t (Plan.Torn_write { save = t.saves; at_byte = at });
    Bytes.sub img 0 at

(* Ambient default, read by Machine.create: [None] means machines boot
   with no injector; [Some (plan, seed)] means every machine created in
   this dynamic extent gets a fresh injector for that plan. Domain-local
   (like Recorder.with_tracing) so parallel trials each build their own
   injector and -j 1 vs -j N runs fire identically. *)
let ambient : (Plan.t * int) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let ambient_plan () = Domain.DLS.get ambient

let with_plan ?(seed = 42) plan f =
  let prev = Domain.DLS.get ambient in
  Domain.DLS.set ambient (Some (plan, seed));
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient prev) f
