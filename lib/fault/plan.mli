(** Fault plans: declarative descriptions of the faults to inject.

    A plan is pure data — a list of faults, each pinned to the exact
    deterministic point where it fires (a pid's n-th invocation of a
    dispatch entry, the n-th segment grow, the n-th persist save). The
    {!Injector} interprets plans; given the same plan and seed, every
    run fires the same faults at the same simulated-cycle points. *)

type fault =
  | Kill_at_syscall of { pid : int; nr : int; occurrence : int }
      (** Kill [pid] on its [occurrence]-th (1-based) invocation of
          dispatch entry number [nr], before the entry body runs. *)
  | Kill_holding_lock of { pid : int; sid : int }
      (** Kill [pid] at its first syscall issued while holding a lock on
          segment [sid] — death inside the critical section (§3.2). *)
  | Would_block_storm of { pid : int; nr : int; count : int }
      (** The next [count] invocations of [nr] by [pid] fail with a
          transient [Would_block] instead of running. *)
  | Grow_fail of { nth : int }
      (** The [nth] (1-based, machine-wide) segment grow fails with
          [Capacity]. *)
  | Torn_write of { save : int; at_byte : int }
      (** The [save]-th (1-based) persist image is truncated at byte
          [at_byte], as if the writer died mid-write; [at_byte = -1]
          draws the offset from the injector's seeded rng. *)

type t = fault list

(** Builders, for readable plan literals in tests and sjctl. *)

val kill_at_syscall : pid:int -> nr:int -> ?occurrence:int -> unit -> fault
val kill_holding_lock : pid:int -> sid:int -> fault
val would_block_storm : pid:int -> nr:int -> count:int -> fault
val grow_fail : nth:int -> fault
val torn_write : ?at_byte:int -> save:int -> unit -> fault

val fault_to_string : fault -> string
val to_string : t -> string
