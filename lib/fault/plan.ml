(* A fault plan is data: a list of injectable faults, each described by
   the deterministic point where it fires (pid + syscall occurrence,
   nth grow, nth save). The Injector interprets the plan; this module
   only describes it, so plans can be built, printed and compared
   without touching any simulation state. *)

type fault =
  | Kill_at_syscall of { pid : int; nr : int; occurrence : int }
      (* Kill [pid] on its [occurrence]-th invocation (1-based) of
         dispatch entry [nr], before the entry body runs. *)
  | Kill_holding_lock of { pid : int; sid : int }
      (* Kill [pid] at its first syscall issued while it holds a lock
         on segment [sid] — the mid-critical-section death of §3.2. *)
  | Would_block_storm of { pid : int; nr : int; count : int }
      (* The next [count] invocations of [nr] by [pid] fail with a
         transient [Would_block] instead of running. *)
  | Grow_fail of { nth : int }
      (* The [nth] segment grow (1-based, machine-wide) fails with
         [Capacity]. *)
  | Torn_write of { save : int; at_byte : int }
      (* The [save]-th persist image (1-based) is truncated at
         [at_byte], as if the writer died mid-write. [at_byte = -1]
         draws the offset from the injector's seeded rng. *)

type t = fault list

let kill_at_syscall ~pid ~nr ?(occurrence = 1) () =
  Kill_at_syscall { pid; nr; occurrence }

let kill_holding_lock ~pid ~sid = Kill_holding_lock { pid; sid }
let would_block_storm ~pid ~nr ~count = Would_block_storm { pid; nr; count }
let grow_fail ~nth = Grow_fail { nth }
let torn_write ?(at_byte = -1) ~save () = Torn_write { save; at_byte }

let fault_to_string = function
  | Kill_at_syscall { pid; nr; occurrence } ->
    Printf.sprintf "kill_at_syscall(pid=%d nr=%d occurrence=%d)" pid nr occurrence
  | Kill_holding_lock { pid; sid } ->
    Printf.sprintf "kill_holding_lock(pid=%d sid=%d)" pid sid
  | Would_block_storm { pid; nr; count } ->
    Printf.sprintf "would_block_storm(pid=%d nr=%d count=%d)" pid nr count
  | Grow_fail { nth } -> Printf.sprintf "grow_fail(nth=%d)" nth
  | Torn_write { save; at_byte } ->
    Printf.sprintf "torn_write(save=%d at_byte=%d)" save at_byte

let to_string plan = String.concat "; " (List.map fault_to_string plan)
