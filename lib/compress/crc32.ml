(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   The table is filled eagerly at module init and never written again,
   so it is safe to share across domains (HACKING.md, "Domain safety"). *)

let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc b ~pos ~len =
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let bytes b = update 0 b ~pos:0 ~len:(Bytes.length b)
let string s = bytes (Bytes.unsafe_of_string s)
