(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial).

    Used by the persistence layer to detect silent bit-flips and torn
    writes in saved images. Pure and deterministic; values are in
    [0, 2{^32}). *)

val bytes : bytes -> int
(** Checksum of a whole byte buffer. *)

val string : string -> int

val update : int -> bytes -> pos:int -> len:int -> int
(** [update crc b ~pos ~len] extends [crc] over a slice, so a checksum
    can be computed incrementally: [bytes b = update 0 b ~pos:0
    ~len:(Bytes.length b)]. *)
