(* BENCH report, schema "spacejmp-bench/4".

   v2 extended PR 1's fastpath schema with host metadata (cores, OCaml
   version, -j) and the serial-vs-parallel comparison: aggregate wall
   times for the suite run serially and fanned across the domain pool,
   plus a per-bench equivalence bit for each comparison. v3 added, per
   bench: the shard count, the wall spent on it during the parallel
   batch, and the host GC allocation it caused (minor/major words,
   serial fast-path run) — the counters the zero-allocation work is
   held to. v4 fixes the host block, which recorded only the domain
   count and -j: it now also records the detected core count, and each
   bench carries the shard -> pool-slot placement of the reported
   parallel batch, so a reader can tell a genuinely spread batch from
   one that serialized on a loaded host. Placement is a host artifact —
   it never feeds the fingerprints. The emitter never writes a
   divergent report — the harness exits 2 first — but the checker still
   refuses any report that records one, so a report that exists and
   checks is trustworthy. *)

type bench_report = {
  name : string;
  shards : int;  (* parallel-phase tasks this bench contributes *)
  placement : int array;  (* pool slot of each shard, reported batch *)
  equal_between_modes : bool;  (* fast path on vs off *)
  equal_serial_parallel : bool;  (* serial vs domain pool *)
  wall_slow : float;  (* serial, fast path off *)
  wall_fast : float;  (* serial, fast path on *)
  wall_parallel : float;  (* shard walls summed, parallel phase, fast *)
  minor_words : float;  (* Gc minor words, serial fast run *)
  major_words : float;  (* Gc major words, serial fast run *)
  simulated : Suite.fingerprint;
}

type t = {
  quick : bool;
  jobs : int;
  cores : int;  (* Domain.recommended_domain_count *)
  detected_cores : int;  (* OS-reported online processors *)
  ocaml_version : string;
  benches : bench_report list;
  wall_serial : float;  (* fast path on, whole suite, serial *)
  wall_parallel : float;  (* fast path on, whole suite, pool batch wall *)
}

let schema = "spacejmp-bench/4"

(* Online processors as the OS reports them, as opposed to the runtime
   heuristic in [cores]: on a cgroup-limited or SMT host the two
   disagree, and a surprising parallel_speedup is only interpretable
   with both on record. *)
let detected_cores () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    if !n > 0 then !n else Domain.recommended_domain_count ()
  with Sys_error _ -> Domain.recommended_domain_count ()

let to_json r =
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"%s\",\n" schema;
  add "  \"mode\": \"%s\",\n" (if r.quick then "quick" else "full");
  add "  \"host\": {\n";
  add "    \"cores\": %d,\n" r.cores;
  add "    \"detected_cores\": %d,\n" r.detected_cores;
  add "    \"ocaml_version\": \"%s\",\n" r.ocaml_version;
  add "    \"jobs\": %d\n" r.jobs;
  add "  },\n";
  add "  \"benches\": [\n";
  List.iteri
    (fun i br ->
      add "    {\n";
      add "      \"name\": \"%s\",\n" br.name;
      add "      \"shards\": %d,\n" br.shards;
      add "      \"placement\": [%s],\n"
        (String.concat ", "
           (Array.to_list (Array.map string_of_int br.placement)));
      add "      \"equal_between_modes\": %b,\n" br.equal_between_modes;
      add "      \"equal_serial_parallel\": %b,\n" br.equal_serial_parallel;
      add "      \"wall_slow_s\": %.6f,\n" br.wall_slow;
      add "      \"wall_fast_s\": %.6f,\n" br.wall_fast;
      add "      \"wall_parallel_s\": %.6f,\n" br.wall_parallel;
      add "      \"speedup\": %.3f,\n" (br.wall_slow /. br.wall_fast);
      add "      \"minor_words\": %.0f,\n" br.minor_words;
      add "      \"major_words\": %.0f,\n" br.major_words;
      add "      \"simulated\": {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then add ", ";
          add "\"%s\": %d" k v)
        br.simulated;
      add "}\n";
      add (if i = List.length r.benches - 1 then "    }\n" else "    },\n"))
    r.benches;
  add "  ],\n";
  let tot_slow = List.fold_left (fun a br -> a +. br.wall_slow) 0. r.benches in
  let tot_fast = List.fold_left (fun a br -> a +. br.wall_fast) 0. r.benches in
  add "  \"aggregate\": {\n";
  add "    \"wall_slow_s\": %.6f,\n" tot_slow;
  add "    \"wall_fast_s\": %.6f,\n" tot_fast;
  add "    \"speedup\": %.3f,\n" (tot_slow /. tot_fast);
  add "    \"wall_serial_s\": %.6f,\n" r.wall_serial;
  add "    \"wall_parallel_s\": %.6f,\n" r.wall_parallel;
  (* Four decimals: on a single-core host this ratio's honest ceiling
     is ~1.0, and whether sharding overhead is above or below zero
     lives in the fourth digit. *)
  add "    \"parallel_speedup\": %.4f\n" (r.wall_serial /. r.wall_parallel);
  add "  }\n}\n";
  Buffer.contents b

(* Minimal structural validation of an emitted report: no JSON library
   in the tree, so check nesting balance (outside strings) and the
   presence of required keys; refuse any recorded divergence. *)
let check_string s =
  let depth = ref 0 and in_str = ref false and ok = ref true in
  String.iteri
    (fun i ch ->
      if !in_str then begin
        if ch = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  if !depth <> 0 || !in_str then ok := false;
  let required =
    [
      Printf.sprintf "\"schema\": \"%s\"" schema;
      "\"host\"";
      "\"cores\"";
      "\"ocaml_version\"";
      "\"jobs\"";
      "\"detected_cores\"";
      "\"placement\"";
      "\"benches\"";
      "\"aggregate\"";
      "\"shards\"";
      "\"speedup\"";
      "\"minor_words\"";
      "\"major_words\"";
      "\"wall_slow_s\"";
      "\"wall_fast_s\"";
      "\"wall_serial_s\"";
      "\"wall_parallel_s\"";
      "\"parallel_speedup\"";
      "\"simulated\"";
    ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let errors = ref [] in
  List.iter
    (fun key -> if not (contains key) then errors := Printf.sprintf "missing key %s" key :: !errors)
    required;
  if contains "\"equal_between_modes\": false" then
    errors := "report records a fast/slow divergence" :: !errors;
  if contains "\"equal_serial_parallel\": false" then
    errors := "report records a serial/parallel divergence" :: !errors;
  if not !ok then errors := "unbalanced JSON nesting" :: !errors;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  check_string s
