(** The shared fast-path/parallelism benchmark suite.

    Used by [bench/harness.exe], [sjctl bench], and the test suite's
    parallel-determinism check. Every bench is an isolated simulation
    whose {!fingerprint} must be bit-identical across host execution
    strategies (slow vs fast path, serial vs domain-parallel). *)

type fingerprint = (string * int) list

val pp_fingerprint : fingerprint -> string

type bench = { bname : string; shards : (unit -> fingerprint) array }
(** A bench is one or more *shards*: independent simulations whose
    fingerprints merge by elementwise sum. Single-shard benches (most
    of the suite) report their shard's fingerprint untouched; a
    multi-shard bench is the unit of load balancing in the parallel
    phase — each shard is its own pool task. Every shard must emit the
    same keys in the same order. *)

val suite : quick:bool -> bench list
(** The harness suite: bulk-access micros, GUPS, kvstore, plus the
    multi-shard [kvstore_mt] (four independent trials, merged). [quick]
    uses small problem sizes (seconds; `dune runtest` smoke). *)

val tiny_suite : unit -> bench list
(** Unit-test sizes: sub-second even across modes and domains. *)

type timed = {
  tname : string;
  fp : fingerprint;  (** merged across shards *)
  wall : float;  (** summed over shards (CPU work, not batch wall) *)
  minor_words : float;  (** [Gc] minor words allocated, summed over shards *)
  major_words : float;  (** [Gc] major words allocated, summed over shards *)
}

val run_one : ?trace:bool -> fast:bool -> bench -> timed
(** Run one bench's shards in order with the given fast-path mode (set
    domain-locally for the duration, so this is safe from any domain).
    [?trace] (default false) additionally enables [Sj_obs] tracing for
    the bench's machines; fingerprints are identical either way — the
    obs tests assert this. *)

val run_serial : ?trace:bool -> fast:bool -> bench list -> timed list

val run_parallel :
  Sj_util.Par.t -> ?trace:bool -> fast:bool -> bench list -> timed list * float
(** Fan the suite's *shards* across the pool (a multi-shard bench is
    several tasks). Results are merged per bench, in suite order; the
    second component is the batch wall-clock. *)

val run_parallel_placed :
  Sj_util.Par.t ->
  ?trace:bool ->
  fast:bool ->
  bench list ->
  timed list * (string * int array) list * float
(** {!run_parallel}, additionally reporting where each shard actually
    ran: per bench (suite order), the pool slot of each of its shards
    ({!Sj_util.Par.run_placed}). Placement is a host artifact for the
    report's host block — never part of the fingerprint. *)

val fingerprints_equal : timed list -> timed list -> bool
(** Same benches, same fingerprints, same order. Wall times are
    (necessarily) ignored. *)
