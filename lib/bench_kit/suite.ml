(* The wall-clock benchmark suite shared by bench/harness.exe, `sjctl
   bench`, and the parallel-determinism test.

   Each bench is an isolated simulation (its own machine, RNGs,
   contexts) returning a *fingerprint* of its simulated outcome. The
   fingerprint is the equivalence currency of the harness: it must be
   bit-identical between the slow and fast host paths, and between a
   serial run and a domain-parallel run — otherwise the harness refuses
   to report (exit 2 discipline). *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Pm = Sj_mem.Phys_mem
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Tlb = Sj_tlb.Tlb
module Gups = Sj_gups.Gups
module Kv_sim = Sj_kvstore.Kv_sim

(* A fingerprint is the simulated-side outcome of a bench: cycles, TLB
   stats, data checksums. All execution strategies must produce equal
   ones. *)
type fingerprint = (string * int) list

let pp_fingerprint fp =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fp)

let core_fingerprint core extra : fingerprint =
  let s = Tlb.stats (Core.tlb core) in
  [
    ("cycles", Core.cycles core);
    ("tlb_hits", s.hits);
    ("tlb_misses", s.misses);
    ("tlb_insertions", s.insertions);
  ]
  @ extra

(* ---- micro benches: a hot 4-page region on a small machine ---- *)

let micro_platform : Platform.t =
  {
    Platform.m2 with
    name = "bench-micro";
    mem_size = Size.mib 128;
    sockets = 2;
    cores_per_socket = 2;
  }

(* The region fits the simulated L1, so after warm-up every line access
   is a hit and the wall clock is pure simulator bookkeeping —
   translation, per-line charging, and byte copies — which is exactly
   the overhead the fast path attacks. *)
let micro_pages = 4
let micro_base = 0x4000_0000
let micro_bytes = micro_pages * Addr.page_size

let micro_setup () =
  let m = Machine.create micro_platform in
  let pt = Page_table.create (Machine.mem m) in
  let frames = Pm.alloc_frames (Machine.mem m) ~n:micro_pages in
  Page_table.map_range pt ~va:micro_base ~frames ~prot:Prot.rw;
  let core = Machine.core m 0 in
  Core.set_page_table core ~tag:1 (Some pt);
  core

let bench_load_bytes ~iters () =
  let core = micro_setup () in
  Core.store_bytes core ~va:micro_base
    (Bytes.init 4096 (fun i -> Char.chr (i land 0xff)));
  let span = 4096 in
  let sum = ref 0 in
  for i = 0 to iters - 1 do
    let off = (i * 4099 * 8) mod (micro_bytes - span) in
    let b = Core.load_bytes core ~va:(micro_base + off) ~len:span in
    sum := !sum + Char.code (Bytes.get b (i mod span))
  done;
  core_fingerprint core [ ("checksum", !sum) ]

let bench_memcpy ~iters () =
  let core = micro_setup () in
  Core.store_bytes core ~va:micro_base
    (Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xff)));
  let half = micro_bytes / 2 in
  for i = 0 to iters - 1 do
    (* Ping-pong the two halves so both stay written-to. *)
    let src = micro_base + ((i land 1) * half) in
    let dst = micro_base + (((i + 1) land 1) * half) in
    Core.memcpy core ~dst ~src ~len:half
  done;
  let tail = Core.load_bytes core ~va:(micro_base + half) ~len:256 in
  let sum = ref 0 in
  Bytes.iter (fun ch -> sum := !sum + Char.code ch) tail;
  core_fingerprint core [ ("checksum", !sum) ]

let bench_memset ~iters () =
  let core = micro_setup () in
  let len = micro_bytes / 2 in
  for i = 0 to iters - 1 do
    let off = (i * 4099 * 8) mod (micro_bytes - len) in
    Core.memset core ~va:(micro_base + off) ~len (Char.chr (i land 0xff))
  done;
  let b = Core.load_bytes core ~va:micro_base ~len:4096 in
  let sum = ref 0 in
  Bytes.iter (fun ch -> sum := !sum + Char.code ch) b;
  core_fingerprint core [ ("checksum", !sum) ]

(* The kvstore's signature access pattern in isolation: alternate a
   vas_switch into a shared segment with one small op there and a
   switch back home. Every iteration pays the full jump price (switch
   syscall, page-table swap, TLB effects under the platform's tagging
   policy) against almost no useful work — the worst case the cluster's
   batched path amortizes away, and the pattern most sensitive to
   switch-cost regressions. *)
let bench_switch_storm ~iters () =
  let m = Machine.create micro_platform in
  let sys = Sj_core.Api.boot m in
  let proc = Sj_kernel.Process.create ~name:"storm" m in
  let ctx = Sj_core.Api.context sys proc (Machine.core m 0) in
  let open Sj_core in
  let vas = Api.vas_create ctx ~name:"storm" ~mode:0o666 in
  let seg =
    Api.seg_alloc_anywhere ctx ~name:"storm.data" ~size:(Size.kib 64) ~mode:0o666
  in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  let base = Segment.base seg in
  let core = Api.core ctx in
  let sum = ref 0 in
  for i = 0 to iters - 1 do
    Api.vas_switch ctx vh;
    (* The small op: one line-sized read-modify-write in the segment. *)
    let va = base + (i * 64 mod Size.kib 64) in
    let b = Core.load_bytes core ~va ~len:8 in
    Bytes.set b 0 (Char.chr (i land 0xff));
    Core.store_bytes core ~va b;
    sum := !sum + Char.code (Bytes.get b 0);
    Api.switch_home ctx
  done;
  core_fingerprint core
    [ ("checksum", !sum); ("switches", Registry.switch_count (Api.registry sys)) ]

(* ---- workload benches: whole simulations through either path ---- *)

let bench_gups ~visits () =
  let cfg =
    {
      Gups.default_config with
      platform = Platform.m1;
      windows = 4;
      (* Small windows keep setup (page-table population) off the
         measurement; the visit loop dominates the wall clock. *)
      window_size = Size.mib 2;
      updates_per_set = 64;
      window_visits = visits;
      tags = true;
    }
  in
  let r = Gups.run cfg ~design:Gups.Spacejmp in
  [ ("cycles", r.cycles); ("updates", r.updates) ]

let kv_fingerprint (r : Kv_sim.result) : fingerprint =
  [
    ("requests", r.requests);
    ("gets", r.gets);
    ("sets", r.sets);
    ("lock_wait_cycles", r.lock_wait_cycles);
    ("switches", r.switches);
    ("tlb_misses", r.tlb_misses);
  ]

let bench_kvstore ~duration () =
  let cfg =
    {
      Kv_sim.default_config with
      clients = 8;
      set_fraction = 0.2;
      duration_cycles = duration;
    }
  in
  kv_fingerprint (Kv_sim.run cfg)

(* One trial of the multi-shard kvstore bench: an independent
   simulation per shard, distinguished only by RNG seed. Each shard is
   deterministic on its own, so the merged fingerprint (elementwise
   sum) is deterministic no matter which domain runs which shard. *)
let kv_trial ~duration ~seed () =
  let cfg =
    {
      Kv_sim.default_config with
      clients = 8;
      set_fraction = 0.2;
      duration_cycles = duration;
      seed;
    }
  in
  kv_fingerprint (Kv_sim.run cfg)

type bench = { bname : string; shards : (unit -> fingerprint) array }

let single bname body = { bname; shards = [| body |] }

let kv_mt ~duration ~trials =
  {
    bname = "kvstore_mt";
    shards = Array.init trials (fun i -> kv_trial ~duration ~seed:(101 + (17 * i)));
  }

let suite ~quick =
  let q = quick in
  [
    single "load_bytes" (bench_load_bytes ~iters:(if q then 5_000 else 150_000));
    single "memcpy" (bench_memcpy ~iters:(if q then 5_000 else 150_000));
    single "memset" (bench_memset ~iters:(if q then 8_000 else 250_000));
    single "gups" (bench_gups ~visits:(if q then 400 else 4_000));
    single "switch_storm" (bench_switch_storm ~iters:(if q then 2_000 else 60_000));
    single "kvstore" (bench_kvstore ~duration:(if q then 1_000_000 else 5_000_000));
    (* The only multi-shard bench: four independent kvstore trials that
       the parallel phase schedules as separate pool tasks, so the batch
       can balance across domains instead of waiting on one long bench. *)
    kv_mt ~duration:(if q then 400_000 else 5_000_000) ~trials:4;
  ]

(* A tiny suite for unit tests: same benches, sizes chosen to finish in
   well under a second even times four domains times two modes. *)
let tiny_suite () =
  [
    single "load_bytes" (bench_load_bytes ~iters:300);
    single "memcpy" (bench_memcpy ~iters:300);
    single "memset" (bench_memset ~iters:400);
    single "gups" (bench_gups ~visits:40);
    single "switch_storm" (bench_switch_storm ~iters:150);
    single "kvstore" (bench_kvstore ~duration:200_000);
    kv_mt ~duration:100_000 ~trials:4;
  ]

(* ---- execution strategies ---- *)

type timed = {
  tname : string;
  fp : fingerprint;
  wall : float;
  minor_words : float;
  major_words : float;
}

(* Shard fingerprints merge by elementwise sum: every shard of a bench
   emits the same keys in the same order, and the counters are all
   additive (cycles, hits, requests, checksums). A single-shard bench's
   fingerprint passes through untouched. *)
let merge_fingerprints = function
  | [] -> invalid_arg "Suite.merge_fingerprints: no shards"
  | [ fp ] -> fp
  | fp0 :: rest ->
    List.fold_left
      (fun acc fp ->
        if List.map fst fp <> List.map fst acc then
          invalid_arg "Suite.merge_fingerprints: shard key mismatch";
        List.map2 (fun (k, a) (_, b) -> (k, a + b)) acc fp)
      fp0 rest

(* [Machine.with_fast_path] and [Recorder.with_tracing] are both
   domain-local state, so each shard task fixes its own mode — a task
   inherits nothing from the submitting domain. [?trace] exists for the
   obs determinism tests; fingerprints must be identical either way.
   GC counters are read on the running domain, so a shard's allocation
   is attributed wherever it actually ran. *)
let run_shard ?(trace = false) ~fast body =
  Machine.with_fast_path fast (fun () ->
      Sj_obs.Recorder.with_tracing trace (fun () ->
          let g0 = Gc.quick_stat () in
          let t0 = Unix.gettimeofday () in
          let fp = body () in
          let wall = Unix.gettimeofday () -. t0 in
          let g1 = Gc.quick_stat () in
          ( fp,
            wall,
            g1.Gc.minor_words -. g0.Gc.minor_words,
            g1.Gc.major_words -. g0.Gc.major_words )))

let collect bname parts =
  let sum f = Array.fold_left (fun a p -> a +. f p) 0. parts in
  {
    tname = bname;
    fp = merge_fingerprints (Array.to_list (Array.map (fun (fp, _, _, _) -> fp) parts));
    wall = sum (fun (_, w, _, _) -> w);
    minor_words = sum (fun (_, _, mn, _) -> mn);
    major_words = sum (fun (_, _, _, mj) -> mj);
  }

let run_one ?trace ~fast b =
  collect b.bname (Array.map (fun body -> run_shard ?trace ~fast body) b.shards)

let run_serial ?trace ~fast benches = List.map (run_one ?trace ~fast) benches

(* Fan *shards* (not whole benches) across the pool; a multi-shard
   bench becomes several independent tasks, so the batch balances
   instead of serializing behind its longest bench. Shard results are
   regrouped and merged in suite order, so a parallel run is directly
   comparable to a serial one. Returns the per-bench results and the
   batch wall-clock (the number parallelism improves; a bench's [wall]
   still sums its shards' walls, i.e. its CPU work). *)
let run_parallel_placed pool ?trace ~fast benches =
  let t0 = Unix.gettimeofday () in
  let tasks =
    Array.concat
      (List.map
         (fun b -> Array.map (fun body () -> run_shard ?trace ~fast body) b.shards)
         benches)
  in
  let rs, placed = Par.run_placed pool tasks in
  let pos = ref 0 in
  let timed, placement =
    List.split
      (List.map
         (fun b ->
           let n = Array.length b.shards in
           let parts = Array.sub rs !pos n in
           let slots = Array.sub placed !pos n in
           pos := !pos + n;
           (collect b.bname parts, (b.bname, slots)))
         benches)
  in
  (timed, placement, Unix.gettimeofday () -. t0)

let run_parallel pool ?trace ~fast benches =
  let timed, _, wall = run_parallel_placed pool ?trace ~fast benches in
  (timed, wall)

let fingerprints_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.tname = y.tname && x.fp = y.fp) a b
