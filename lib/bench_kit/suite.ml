(* The wall-clock benchmark suite shared by bench/harness.exe, `sjctl
   bench`, and the parallel-determinism test.

   Each bench is an isolated simulation (its own machine, RNGs,
   contexts) returning a *fingerprint* of its simulated outcome. The
   fingerprint is the equivalence currency of the harness: it must be
   bit-identical between the slow and fast host paths, and between a
   serial run and a domain-parallel run — otherwise the harness refuses
   to report (exit 2 discipline). *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Pm = Sj_mem.Phys_mem
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Tlb = Sj_tlb.Tlb
module Gups = Sj_gups.Gups
module Kv_sim = Sj_kvstore.Kv_sim

(* A fingerprint is the simulated-side outcome of a bench: cycles, TLB
   stats, data checksums. All execution strategies must produce equal
   ones. *)
type fingerprint = (string * int) list

let pp_fingerprint fp =
  String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fp)

let core_fingerprint core extra : fingerprint =
  let s = Tlb.stats (Core.tlb core) in
  [
    ("cycles", Core.cycles core);
    ("tlb_hits", s.hits);
    ("tlb_misses", s.misses);
    ("tlb_insertions", s.insertions);
  ]
  @ extra

(* ---- micro benches: a hot 4-page region on a small machine ---- *)

let micro_platform : Platform.t =
  {
    Platform.m2 with
    name = "bench-micro";
    mem_size = Size.mib 128;
    sockets = 2;
    cores_per_socket = 2;
  }

(* The region fits the simulated L1, so after warm-up every line access
   is a hit and the wall clock is pure simulator bookkeeping —
   translation, per-line charging, and byte copies — which is exactly
   the overhead the fast path attacks. *)
let micro_pages = 4
let micro_base = 0x4000_0000
let micro_bytes = micro_pages * Addr.page_size

let micro_setup () =
  let m = Machine.create micro_platform in
  let pt = Page_table.create (Machine.mem m) in
  let frames = Pm.alloc_frames (Machine.mem m) ~n:micro_pages in
  Page_table.map_range pt ~va:micro_base ~frames ~prot:Prot.rw;
  let core = Machine.core m 0 in
  Core.set_page_table core ~tag:1 (Some pt);
  core

let bench_load_bytes ~iters () =
  let core = micro_setup () in
  Core.store_bytes core ~va:micro_base
    (Bytes.init 4096 (fun i -> Char.chr (i land 0xff)));
  let span = 4096 in
  let sum = ref 0 in
  for i = 0 to iters - 1 do
    let off = (i * 4099 * 8) mod (micro_bytes - span) in
    let b = Core.load_bytes core ~va:(micro_base + off) ~len:span in
    sum := !sum + Char.code (Bytes.get b (i mod span))
  done;
  core_fingerprint core [ ("checksum", !sum) ]

let bench_memcpy ~iters () =
  let core = micro_setup () in
  Core.store_bytes core ~va:micro_base
    (Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xff)));
  let half = micro_bytes / 2 in
  for i = 0 to iters - 1 do
    (* Ping-pong the two halves so both stay written-to. *)
    let src = micro_base + ((i land 1) * half) in
    let dst = micro_base + (((i + 1) land 1) * half) in
    Core.memcpy core ~dst ~src ~len:half
  done;
  let tail = Core.load_bytes core ~va:(micro_base + half) ~len:256 in
  let sum = ref 0 in
  Bytes.iter (fun ch -> sum := !sum + Char.code ch) tail;
  core_fingerprint core [ ("checksum", !sum) ]

let bench_memset ~iters () =
  let core = micro_setup () in
  let len = micro_bytes / 2 in
  for i = 0 to iters - 1 do
    let off = (i * 4099 * 8) mod (micro_bytes - len) in
    Core.memset core ~va:(micro_base + off) ~len (Char.chr (i land 0xff))
  done;
  let b = Core.load_bytes core ~va:micro_base ~len:4096 in
  let sum = ref 0 in
  Bytes.iter (fun ch -> sum := !sum + Char.code ch) b;
  core_fingerprint core [ ("checksum", !sum) ]

(* ---- workload benches: whole simulations through either path ---- *)

let bench_gups ~visits () =
  let cfg =
    {
      Gups.default_config with
      platform = Platform.m1;
      windows = 4;
      (* Small windows keep setup (page-table population) off the
         measurement; the visit loop dominates the wall clock. *)
      window_size = Size.mib 2;
      updates_per_set = 64;
      window_visits = visits;
      tags = true;
    }
  in
  let r = Gups.run cfg ~design:Gups.Spacejmp in
  [ ("cycles", r.cycles); ("updates", r.updates) ]

let bench_kvstore ~duration () =
  let cfg =
    {
      Kv_sim.default_config with
      clients = 8;
      set_fraction = 0.2;
      duration_cycles = duration;
    }
  in
  let r = Kv_sim.run cfg in
  [
    ("requests", r.requests);
    ("gets", r.gets);
    ("sets", r.sets);
    ("lock_wait_cycles", r.lock_wait_cycles);
    ("switches", r.switches);
    ("tlb_misses", r.tlb_misses);
  ]

type bench = { bname : string; body : unit -> fingerprint }

let suite ~quick =
  let q = quick in
  [
    { bname = "load_bytes"; body = bench_load_bytes ~iters:(if q then 5_000 else 150_000) };
    { bname = "memcpy"; body = bench_memcpy ~iters:(if q then 5_000 else 150_000) };
    { bname = "memset"; body = bench_memset ~iters:(if q then 8_000 else 250_000) };
    { bname = "gups"; body = bench_gups ~visits:(if q then 400 else 4_000) };
    { bname = "kvstore"; body = bench_kvstore ~duration:(if q then 1_000_000 else 5_000_000) };
  ]

(* A tiny suite for unit tests: same benches, sizes chosen to finish in
   well under a second even times four domains times two modes. *)
let tiny_suite () =
  [
    { bname = "load_bytes"; body = bench_load_bytes ~iters:300 };
    { bname = "memcpy"; body = bench_memcpy ~iters:300 };
    { bname = "memset"; body = bench_memset ~iters:400 };
    { bname = "gups"; body = bench_gups ~visits:40 };
    { bname = "kvstore"; body = bench_kvstore ~duration:200_000 };
  ]

(* ---- execution strategies ---- *)

type timed = { tname : string; fp : fingerprint; wall : float }

(* [Machine.with_fast_path] and [Recorder.with_tracing] are both
   domain-local state, so each task fixes its own mode — a task inherits
   nothing from the submitting domain. [?trace] exists for the obs
   determinism tests; fingerprints must be identical either way. *)
let run_one ?(trace = false) ~fast b =
  Machine.with_fast_path fast (fun () ->
      Sj_obs.Recorder.with_tracing trace (fun () ->
          let t0 = Unix.gettimeofday () in
          let fp = b.body () in
          { tname = b.bname; fp; wall = Unix.gettimeofday () -. t0 }))

let run_serial ?trace ~fast benches = List.map (run_one ?trace ~fast) benches

(* Fan the suite across a pool; results come back in suite order, so a
   parallel run is directly comparable to a serial one. Returns the
   per-bench results and the batch wall-clock (the number parallelism
   improves; the per-bench walls still sum to total CPU work). *)
let run_parallel pool ?trace ~fast benches =
  let t0 = Unix.gettimeofday () in
  let rs = Par.map_list pool (run_one ?trace ~fast) benches in
  (rs, Unix.gettimeofday () -. t0)

let fingerprints_equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.tname = y.tname && x.fp = y.fp) a b
