(** BENCH JSON report, schema ["spacejmp-bench/2"].

    v2 adds host metadata (cores, OCaml version, [-j]) and the
    serial-vs-parallel comparison to PR 1's fastpath schema. The
    checker refuses any report recording a fingerprint divergence, so
    a report that exists and checks is trustworthy. *)

type bench_report = {
  name : string;
  equal_between_modes : bool;  (** fast path on vs off *)
  equal_serial_parallel : bool;  (** serial vs domain pool *)
  wall_slow : float;  (** serial, fast path off *)
  wall_fast : float;  (** serial, fast path on *)
  simulated : Suite.fingerprint;
}

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  benches : bench_report list;
  wall_serial : float;  (** fast path on, whole suite, serial *)
  wall_parallel : float;  (** fast path on, whole suite, pool batch wall *)
}

val schema : string

val to_json : t -> string

val check_string : string -> (unit, string list) result
(** Structural validation: balanced nesting, required v2 keys present,
    and no recorded divergence ([equal_between_modes] or
    [equal_serial_parallel] false). *)

val check_file : string -> (unit, string list) result
