(** BENCH JSON report, schema ["spacejmp-bench/4"].

    v2 added host metadata (cores, OCaml version, [-j]) and the
    serial-vs-parallel comparison to PR 1's fastpath schema; v3 added
    per-bench shard counts, parallel-phase walls, and host GC
    allocation counters. v4 completes the host block: the OS-detected
    processor count next to the runtime's domain heuristic, and the
    shard -> pool-slot placement of the reported parallel batch per
    bench (a host artifact, never part of a fingerprint). The checker
    refuses any report recording a fingerprint divergence, so a report
    that exists and checks is trustworthy. *)

type bench_report = {
  name : string;
  shards : int;  (** parallel-phase tasks this bench contributes *)
  placement : int array;  (** pool slot of each shard, reported batch *)
  equal_between_modes : bool;  (** fast path on vs off *)
  equal_serial_parallel : bool;  (** serial vs domain pool *)
  wall_slow : float;  (** serial, fast path off *)
  wall_fast : float;  (** serial, fast path on *)
  wall_parallel : float;  (** shard walls summed, parallel phase, fast *)
  minor_words : float;  (** Gc minor words allocated, serial fast run *)
  major_words : float;  (** Gc major words allocated, serial fast run *)
  simulated : Suite.fingerprint;
}

type t = {
  quick : bool;
  jobs : int;
  cores : int;  (** [Domain.recommended_domain_count] *)
  detected_cores : int;  (** OS-reported online processors *)
  ocaml_version : string;
  benches : bench_report list;
  wall_serial : float;  (** fast path on, whole suite, serial *)
  wall_parallel : float;  (** fast path on, whole suite, pool batch wall *)
}

val schema : string

val detected_cores : unit -> int
(** Online processors as the OS reports them (/proc/cpuinfo), falling
    back to [Domain.recommended_domain_count] where unreadable. *)

val to_json : t -> string

val check_string : string -> (unit, string list) result
(** Structural validation: balanced nesting, required v4 keys present,
    and no recorded divergence ([equal_between_modes] or
    [equal_serial_parallel] false). *)

val check_file : string -> (unit, string list) result
