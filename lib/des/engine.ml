(* Array-backed binary min-heap keyed by (time, seq), laid out as a
   struct of unboxed int arrays plus one closure array. The three
   arrays are parallel: slot [i] of the heap is (times.(i), seqs.(i),
   actions.(i)). Compared with the previous pairing heap of closure
   nodes, schedule/pop do no allocation at all in steady state — no
   event records, no heap cons cells — so a simulation scheduling
   millions of events never touches the minor heap on the engine's
   account. Slots are recycled in place (the arrays *are* the event
   pool); capacity grows by doubling, the only allocation the engine
   ever performs after creation. *)

type t = {
  mutable now : int;
  mutable times : int array;
  mutable seqs : int array;
  mutable actions : (unit -> unit) array;
  mutable n : int; (* live slots: heap occupies indices 0 .. n-1 *)
  mutable seq : int; (* FIFO tiebreak among equal timestamps *)
}

(* Shared do-nothing closure marking a free slot, so popped slots don't
   pin the caller's closures (and their environments) until overwrite. *)
let nop () = ()

let initial_capacity = 256

let create () =
  {
    now = 0;
    times = Array.make initial_capacity 0;
    seqs = Array.make initial_capacity 0;
    actions = Array.make initial_capacity nop;
    n = 0;
    seq = 0;
  }

let now t = t.now
let pending t = t.n

(* (time, seq) lexicographic order; seq is unique, so this is total. *)
let lt t i ~time ~seq =
  let ti = Array.unsafe_get t.times i in
  ti < time || (ti = time && Array.unsafe_get t.seqs i < seq)

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0
  and seqs = Array.make cap' 0
  and actions = Array.make cap' nop in
  Array.blit t.times 0 times 0 t.n;
  Array.blit t.seqs 0 seqs 0 t.n;
  Array.blit t.actions 0 actions 0 t.n;
  t.times <- times;
  t.seqs <- seqs;
  t.actions <- actions

(* Move the hole at [i] up until [key] fits, then store the event
   there. Writing once at the final position (rather than swapping)
   keeps the sift allocation- and store-minimal. *)
let sift_up t i ~time ~seq action =
  let i = ref i in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if lt t parent ~time ~seq then continue_ := false
    else begin
      Array.unsafe_set t.times !i (Array.unsafe_get t.times parent);
      Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs parent);
      Array.unsafe_set t.actions !i (Array.unsafe_get t.actions parent);
      i := parent
    end
  done;
  Array.unsafe_set t.times !i time;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.actions !i action

let sift_down t ~time ~seq action =
  let n = t.n in
  let i = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let l = (2 * !i) + 1 in
    if l >= n then continue_ := false
    else begin
      let r = l + 1 in
      let c =
        if r < n && lt t r ~time:t.times.(l) ~seq:t.seqs.(l) then r else l
      in
      if lt t c ~time ~seq then begin
        Array.unsafe_set t.times !i (Array.unsafe_get t.times c);
        Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs c);
        Array.unsafe_set t.actions !i (Array.unsafe_get t.actions c);
        i := c
      end
      else continue_ := false
    end
  done;
  Array.unsafe_set t.times !i time;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.actions !i action

let schedule t ~at action =
  if at < t.now then invalid_arg "Engine.schedule: event in the past";
  if t.n >= Array.length t.times then grow t;
  let seq = t.seq in
  t.seq <- seq + 1;
  let i = t.n in
  t.n <- i + 1;
  sift_up t i ~time:at ~seq action

let schedule_after t ~delay action =
  if delay < 0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(t.now + delay) action

let run ?until t =
  let limit = match until with Some l -> l | None -> max_int in
  let continue_ = ref true in
  while !continue_ && t.n > 0 do
    let time = t.times.(0) in
    if time > limit then continue_ := false
    else begin
      let action = t.actions.(0) in
      (* Recycle: move the last slot into the freed root and restore
         heap order; the vacated tail slot is cleared so it no longer
         pins the popped closure. *)
      let last = t.n - 1 in
      t.n <- last;
      if last > 0 then
        sift_down t ~time:t.times.(last) ~seq:t.seqs.(last) t.actions.(last);
      t.actions.(last) <- nop;
      t.now <- time;
      action ()
    end
  done;
  match until with Some limit when t.now < limit -> t.now <- limit | _ -> ()
