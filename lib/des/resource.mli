(** Contended resources for the discrete-event engine: a multi-server
    core pool and a reader/writer lock with FIFO queueing.

    Both resources hand the resource to waiters in arrival order, which
    models the ticket-style fairness of the kernel locks the paper's
    prototypes use (§3.1, §5.3). *)

module Cores : sig
  type t

  val create : Engine.t -> n:int -> t
  (** A pool of [n] identical cores. *)

  val n : t -> int

  val exec : t -> cycles:int -> (unit -> unit) -> unit
  (** [exec t ~cycles k] occupies one core for [cycles], then runs [k].
      If all cores are busy the request queues FIFO. *)

  val busy_cycles : t -> int
  (** Total core-cycles consumed so far (utilization numerator). *)

  val queued_execs : t -> int
  (** Requests that found every core busy and had to queue — the
      backlog counterpart of {!Rwlock.contended_acquires}. *)

  val queued_peak : t -> int
  (** Deepest the FIFO backlog ever got (saturation marker: the
      cluster bench reports it for server and edge cores). *)
end

module Rwlock : sig
  type t

  val create : Engine.t -> t

  val acquire : t -> write:bool -> (unit -> unit) -> unit
  (** Request the lock; the continuation runs when it is granted.
      Readers share; writers are exclusive. FIFO: a queued writer blocks
      later readers (no reader barging), matching the paper's
      exclusive-on-write lockable-segment semantics. *)

  val release : t -> write:bool -> unit

  val contended_acquires : t -> int
  (** Number of acquisitions that had to wait. *)

  val wait_cycles : t -> int
  (** Total cycles spent waiting across all acquisitions. *)
end
