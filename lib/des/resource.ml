module Cores = struct
  type t = {
    eng : Engine.t;
    n : int;
    mutable free : int;
    waiting : (int * (unit -> unit)) Queue.t; (* cycles, continuation *)
    mutable busy_cycles : int;
    mutable queued : int;
    mutable queued_peak : int;
  }

  let create eng ~n =
    if n <= 0 then invalid_arg "Cores.create: n must be positive";
    {
      eng;
      n;
      free = n;
      waiting = Queue.create ();
      busy_cycles = 0;
      queued = 0;
      queued_peak = 0;
    }

  let n t = t.n

  let rec start t cycles k =
    t.free <- t.free - 1;
    t.busy_cycles <- t.busy_cycles + cycles;
    Engine.schedule_after t.eng ~delay:cycles (fun () ->
        t.free <- t.free + 1;
        dispatch t;
        k ())

  and dispatch t =
    if t.free > 0 && not (Queue.is_empty t.waiting) then begin
      let cycles, k = Queue.pop t.waiting in
      start t cycles k
    end

  let exec t ~cycles k =
    if cycles < 0 then invalid_arg "Cores.exec: negative cycles";
    if t.free > 0 then start t cycles k
    else begin
      t.queued <- t.queued + 1;
      if Queue.length t.waiting + 1 > t.queued_peak then
        t.queued_peak <- Queue.length t.waiting + 1;
      Queue.push (cycles, k) t.waiting
    end

  let busy_cycles t = t.busy_cycles
  let queued_execs t = t.queued
  let queued_peak t = t.queued_peak
end

module Rwlock = struct
  type waiter = { write : bool; enqueued_at : int; k : unit -> unit }

  type t = {
    eng : Engine.t;
    mutable readers : int;
    mutable writer : bool;
    waiting : waiter Queue.t;
    mutable contended : int;
    mutable wait_cycles : int;
  }

  let create eng =
    { eng; readers = 0; writer = false; waiting = Queue.create (); contended = 0; wait_cycles = 0 }

  let grant t w =
    t.wait_cycles <- t.wait_cycles + (Engine.now t.eng - w.enqueued_at);
    if w.write then t.writer <- true else t.readers <- t.readers + 1;
    (* Run the continuation asynchronously so grant order stays FIFO even
       if the continuation releases and re-acquires immediately. *)
    Engine.schedule_after t.eng ~delay:0 w.k

  let rec dispatch t =
    match Queue.peek_opt t.waiting with
    | None -> ()
    | Some w ->
      if w.write then begin
        if t.readers = 0 && not t.writer then begin
          ignore (Queue.pop t.waiting);
          grant t w
        end
      end
      else if not t.writer then begin
        ignore (Queue.pop t.waiting);
        grant t w;
        (* Batch-admit consecutive readers at the queue head. *)
        dispatch t
      end

  let acquire t ~write k =
    let free_now =
      if write then t.readers = 0 && (not t.writer) && Queue.is_empty t.waiting
      else (not t.writer) && Queue.is_empty t.waiting
    in
    if free_now then begin
      if write then t.writer <- true else t.readers <- t.readers + 1;
      k ()
    end
    else begin
      t.contended <- t.contended + 1;
      Queue.push { write; enqueued_at = Engine.now t.eng; k } t.waiting
    end

  let release t ~write =
    if write then begin
      assert t.writer;
      t.writer <- false
    end
    else begin
      assert (t.readers > 0);
      t.readers <- t.readers - 1
    end;
    dispatch t

  let contended_acquires t = t.contended
  let wait_cycles t = t.wait_cycles
end
