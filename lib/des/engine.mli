(** Discrete-event simulation engine.

    Time is measured in integer CPU cycles (matching the machine model).
    Simulated activities are continuation-passing state machines: an
    activity performs some work, schedules its continuation at a later
    simulated time, and returns. The engine drains the event queue in
    timestamp order (FIFO among equal timestamps).

    The engine underpins the multi-client experiments (Redis Fig. 10,
    GUPS-MP Fig. 8) where throughput emerges from contention on cores
    and locks rather than from a closed-form model.

    The queue is an array-backed binary heap over unboxed [(time, seq)]
    int keys with recycled slots: steady-state [schedule]/[run] performs
    no allocation at all (test/test_des.ml holds this with a
    [Gc.minor_words] assertion), so event scheduling stays off the GC
    even at millions of in-flight state machines. Capacity grows by
    doubling — the only post-creation allocation. *)

type t

val create : unit -> t
(** A fresh engine at time 0 with an empty queue. *)

val now : t -> int
(** Current simulated time in cycles. *)

val schedule : t -> at:int -> (unit -> unit) -> unit
(** Run a thunk at absolute time [at] (>= now). *)

val schedule_after : t -> delay:int -> (unit -> unit) -> unit
(** Run a thunk [delay] cycles from now ([delay >= 0]). *)

val run : ?until:int -> t -> unit
(** Drain the queue. With [until], stop (leaving later events queued)
    once the next event's timestamp exceeds [until]; [now] is then
    clamped to [until]. *)

val pending : t -> int
(** Number of queued events. *)
