open Sj_util

type t = {
  qname : string;
  flag : int;
  rname : string;
  pos : int;
  mapq : int;
  cigar : string;
  rnext : string;
  pnext : int;
  tlen : int;
  seq : string;
  qual : string;
}

let flag_paired = 0x1
let flag_proper_pair = 0x2
let flag_unmapped = 0x4
let flag_mate_unmapped = 0x8
let flag_reverse = 0x10
let flag_read1 = 0x40
let flag_read2 = 0x80
let flag_secondary = 0x100
let flag_duplicate = 0x400
let is_mapped t = t.flag land flag_unmapped = 0

type reference = { ref_name : string; length : int }

let default_references =
  [
    { ref_name = "chr1"; length = 200_000 };
    { ref_name = "chr2"; length = 200_000 };
    { ref_name = "chr3"; length = 200_000 };
  ]

let bases = [| 'A'; 'C'; 'G'; 'T' |]

(* Reads are substrings of a per-reference random genome (with rare
   substitution errors), so overlapping reads share sequence — giving
   BAM-style compression something to find, as real genomic data does.
   The memo's content is a pure function of the reference identity, so
   sharing it across simulations cannot leak state between them; the
   mutex only makes concurrent misses race-free. Allowlisted in
   test/lint_globals.sh. *)
let genomes : (string, string) Hashtbl.t = Hashtbl.create 4
let genomes_mutex = Mutex.create ()

let genome_of _rng (r : reference) =
  Mutex.protect genomes_mutex @@ fun () ->
  match Hashtbl.find_opt genomes r.ref_name with
  | Some g when String.length g = r.length -> g
  | Some _ | None ->
    (* Seed from the reference identity so the genome — and hence every
       generated dataset — is deterministic regardless of call order. *)
    let own = Rng.create ~seed:(Hashtbl.hash (r.ref_name, r.length)) in
    let g = String.init r.length (fun _ -> Rng.choose own bases) in
    Hashtbl.replace genomes r.ref_name g;
    g

let read_from_genome rng genome ~pos ~len =
  String.init len (fun i ->
      let base = genome.[(pos - 1 + i) mod String.length genome] in
      if Rng.int rng 200 = 0 then Rng.choose rng bases else base)

let random_seq rng len = String.init len (fun _ -> Rng.choose rng bases)

(* Quality strings come in runs, as real base callers emit. *)
let random_qual rng len =
  let buf = Buffer.create len in
  while Buffer.length buf < len do
    let q = Char.chr (33 + 30 + Rng.int rng 10) in
    let run = 4 + Rng.int rng 12 in
    for _ = 1 to min run (len - Buffer.length buf) do
      Buffer.add_char buf q
    done
  done;
  Buffer.contents buf

let random_cigar rng read_len =
  (* Mostly perfect matches; occasionally a small indel or clip. *)
  match Rng.int rng 10 with
  | 0 ->
    let clip = 1 + Rng.int rng 10 in
    Printf.sprintf "%dS%dM" clip (read_len - clip)
  | 1 ->
    let del = 1 + Rng.int rng 3 in
    let half = read_len / 2 in
    Printf.sprintf "%dM%dD%dM" half del (read_len - half)
  | _ -> Printf.sprintf "%dM" read_len

let generate ~seed ~references ~reads ~read_len =
  let rng = Rng.create ~seed in
  let refs = Array.of_list references in
  Array.init reads (fun i ->
      let pair_id = i / 2 in
      let qname = Printf.sprintf "read_%07d" pair_id in
      let first = i mod 2 = 0 in
      let unmapped = Rng.int rng 100 < 3 in
      let secondary = (not unmapped) && Rng.int rng 100 < 2 in
      let duplicate = (not unmapped) && Rng.int rng 100 < 4 in
      let reverse = Rng.bool rng in
      let r = Rng.choose rng refs in
      let pos = if unmapped then 0 else 1 + Rng.int rng (max 1 (r.length - read_len)) in
      let flag =
        flag_paired
        lor (if unmapped then flag_unmapped else 0)
        lor (if (not unmapped) && Rng.int rng 100 < 90 then flag_proper_pair else 0)
        lor (if reverse then flag_reverse else 0)
        lor (if first then flag_read1 else flag_read2)
        lor (if secondary then flag_secondary else 0)
        lor if duplicate then flag_duplicate else 0
      in
      {
        qname;
        flag;
        rname = (if unmapped then "*" else r.ref_name);
        pos;
        mapq = (if unmapped then 0 else 20 + Rng.int rng 40);
        cigar = (if unmapped then "*" else random_cigar rng read_len);
        rnext = (if unmapped then "*" else "=");
        pnext = (if unmapped then 0 else max 1 (pos + 150 + Rng.int rng 100));
        tlen = (if unmapped then 0 else 250 + Rng.int rng 100);
        seq =
          (if unmapped then random_seq rng read_len
           else read_from_genome rng (genome_of rng r) ~pos ~len:read_len);
        qual = random_qual rng read_len;
      })

let compare_qname a b =
  match compare a.qname b.qname with
  | 0 -> compare (a.flag land flag_read1) (b.flag land flag_read1)
  | c -> c

let compare_coordinate a b =
  match (is_mapped a, is_mapped b) with
  | true, false -> -1
  | false, true -> 1
  | false, false -> compare a.qname b.qname
  | true, true -> (
    match compare a.rname b.rname with 0 -> compare a.pos b.pos | c -> c)

let approx_bytes t =
  (* Struct header + strings, rounded to 16-byte granules. *)
  Size.round_up
    (64 + String.length t.qname + String.length t.rname + String.length t.cigar
   + String.length t.seq + String.length t.qual + 16)
    ~align:16
