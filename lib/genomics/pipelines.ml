open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Memfs = Sj_memfs.Memfs
module Block_lz = Sj_compress.Block_lz
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Error = Sj_abi.Error
module Prot = Sj_paging.Prot

type op = Flagstat | Qname_sort | Coord_sort | Index

let op_name = function
  | Flagstat -> "flagstat"
  | Qname_sort -> "qname sort"
  | Coord_sort -> "coordinate sort"
  | Index -> "index"

let all_ops = [ Flagstat; Qname_sort; Coord_sort; Index ]

type env = {
  machine : Machine.t;
  fs : Memfs.t;
  core : Core.core;
  refs : Record.reference list;
  flagstat : Ops.flagstat option ref;
}

let make_env machine fs core =
  { machine; fs; core; refs = Record.default_references; flagstat = ref None }

(* Cost of a demand-paging fault: trap entry/exit, VM object lookup,
   PTE install bookkeeping (the PTE write itself charges separately). *)
let fault_trap = 1_100

let flagstat_result env = !(env.flagstat)

(* Lay records out at consecutive addresses from [base]. *)
let layout_addrs base records =
  let addrs = Array.make (Array.length records) 0 in
  let cursor = ref base in
  Array.iteri
    (fun i r ->
      addrs.(i) <- !cursor;
      cursor := !cursor + Record.approx_bytes r)
    records;
  (addrs, !cursor - base)

(* Run one operation over an in-memory dataset, producing the records
   of the "result" (sorted copy for sorts, input for scans). The
   flagstat result lands in the caller's cell — env- or store-scoped,
   never process-global, so concurrent simulations stay independent. *)
let run_op cell d op =
  match op with
  | Flagstat ->
    cell := Some (Ops.flagstat d);
    d.Ops.records
  | Qname_sort -> Ops.apply_permutation d.records (Ops.sort_permutation d ~by:`Qname)
  | Coord_sort -> Ops.apply_permutation d.records (Ops.sort_permutation d ~by:`Coordinate)
  | Index ->
    ignore (Ops.build_index d ~bin_bp:16384);
    d.records

(* ---------------- File designs ---------------- *)

let write_input_file env ~format ~path records =
  let fd = Memfs.create_file env.fs ~path in
  let data =
    match format with
    | `Sam -> Sam.encode env.refs records
    | `Bam -> Bam.encode env.refs records
  in
  Memfs.write fd ~charge_to:None data

let decode_charged env ~format data =
  let len = Bytes.length data in
  match format with
  | `Sam ->
    Core.charge env.core (Sam.parse_cycles ~bytes:len);
    (match Sam.decode data with Ok r -> r | Error e -> Error.fail Invalid ~op:"sam_decode" e)
  | `Bam ->
    let raw_len = Bytes.length (Block_lz.decompress data) in
    Core.charge env.core (Block_lz.decompress_cycles ~uncompressed:raw_len);
    (match Bam.decode data with
    | Ok r ->
      Core.charge env.core (Bam.decode_cycles ~raw_bytes:raw_len);
      r
    | Error e -> Error.fail Invalid ~op:"bam_decode" e)

let encode_charged env ~format records =
  match format with
  | `Sam ->
    let data = Sam.encode env.refs records in
    Core.charge env.core (Sam.serialize_cycles ~bytes:(Bytes.length data));
    data
  | `Bam ->
    let data = Bam.encode env.refs records in
    let raw = Bytes.length (Block_lz.decompress data) in
    Core.charge env.core (Bam.encode_cycles ~raw_bytes:raw);
    Core.charge env.core (Block_lz.compress_cycles ~uncompressed:raw);
    data

let run_file env ~format op ~in_path ~out_path =
  Machine.cool_caches env.machine;
  let t0 = Core.cycles env.core in
  let fd = Memfs.open_file env.fs ~path:in_path in
  let data = Memfs.read_all fd ~charge_to:(Some env.core) in
  let records = decode_charged env ~format data in
  (* Parsed records occupy freshly allocated process memory; lay them
     out in a scratch region so the operation's accesses are charged
     like any other design's. *)
  let base = 0x6000_0000 in
  let addrs, span = layout_addrs base records in
  let obj =
    Sj_kernel.Vm_object.create env.machine
      ~size:(Size.round_up span ~align:Sj_util.Addr.page_size)
      ~charge_to:(Some env.core)
  in
  let vms = Sj_kernel.Vmspace.create env.machine ~charge_to:(Some env.core) in
  Sj_kernel.Vmspace.map_object vms ~charge_to:(Some env.core) ~base ~prot:Prot.rw obj;
  Core.set_page_table env.core (Some (Sj_kernel.Vmspace.page_table vms));
  (* Building the structures writes every record once. *)
  Core.charge env.core (span / 64 * (Machine.cost env.machine).l1_hit);
  let d = Ops.in_memory records ~addrs ~core:env.core in
  let result = run_op env.flagstat d op in
  (match op with
  | Flagstat -> ()
  | Qname_sort | Coord_sort ->
    let out = encode_charged env ~format result in
    let ofd = Memfs.create_file env.fs ~path:out_path in
    Memfs.write ofd ~charge_to:(Some env.core) out
  | Index ->
    let ofd = Memfs.create_file env.fs ~path:out_path in
    Memfs.write ofd ~charge_to:(Some env.core) (Bytes.create 4096));
  let elapsed = Core.cycles env.core - t0 in
  Core.set_page_table env.core None;
  Sj_kernel.Vmspace.destroy vms ~charge_to:None;
  Sj_kernel.Vm_object.destroy env.machine obj;
  elapsed

let file_records env ~format ~path =
  let fd = Memfs.open_file env.fs ~path in
  let data = Memfs.read_all fd ~charge_to:None in
  match format with
  | `Sam -> ( match Sam.decode data with Ok r -> r | Error e -> Error.fail Invalid ~op:"sam_decode" e)
  | `Bam -> ( match Bam.decode data with Ok r -> r | Error e -> Error.fail Invalid ~op:"bam_decode" e)

(* ---------------- mmap design ---------------- *)

type mmap_store = {
  m_env : env;
  m_path : string;
  mutable m_records : Record.t array;
  m_addrs : int array;
  m_base : int;
  m_pages : int;
}

let mmap_base = 0x7000_0000

(* Serialize each record's bytes at its slot in a region image: the
   in-memory designs genuinely hold the data in simulated memory. *)
let region_image base records addrs span =
  let img = Bytes.create (Size.round_up span ~align:Addr.page_size) in
  Array.iteri
    (fun i r ->
      let buf = Buffer.create 160 in
      Bam.encode_record buf r;
      let b = Buffer.to_bytes buf in
      let off = addrs.(i) - base in
      Bytes.blit b 0 img off (min (Bytes.length b) (Record.approx_bytes r)))
    records;
  img

let prepare_mmap env ~path records =
  let addrs, span = layout_addrs mmap_base records in
  let fd = Memfs.create_file env.fs ~path in
  (* The region file holds the records' bytes (region-based layout). *)
  Memfs.write fd ~charge_to:None (region_image mmap_base records addrs span);
  {
    m_env = env;
    m_path = path;
    m_records = records;
    m_addrs = addrs;
    m_base = mmap_base;
    m_pages = Size.round_up span ~align:Addr.page_size / Addr.page_size;
  }

let run_mmap store op =
  let env = store.m_env in
  Machine.cool_caches env.machine;
  let c = Machine.cost env.machine in
  let t0 = Core.cycles env.core in
  (* mmap the region file: the call itself is cheap; the cost arrives
     as demand faults when the operation touches each page. Charge them
     up front (equivalent total, simpler accounting). *)
  Core.charge env.core c.syscall_generic;
  Core.charge env.core (store.m_pages * (fault_trap + c.pte_write));
  let obj = Memfs.vm_object env.fs ~path:store.m_path in
  let proc_vms = ref None in
  (* Map into a scratch vmspace so the core can translate the region. *)
  let vms = Sj_kernel.Vmspace.create env.machine ~charge_to:None in
  Sj_kernel.Vmspace.map_object vms ~charge_to:None ~base:store.m_base ~prot:Prot.rw obj;
  Core.set_page_table env.core (Some (Sj_kernel.Vmspace.page_table vms));
  proc_vms := Some vms;
  let d = Ops.in_memory store.m_records ~addrs:store.m_addrs ~core:env.core in
  let result = run_op env.flagstat d op in
  (match op with Qname_sort | Coord_sort -> store.m_records <- result | Flagstat | Index -> ());
  (* Timers stop before unmapping (as the paper does). *)
  let elapsed = Core.cycles env.core - t0 in
  (match !proc_vms with
  | Some vms -> Sj_kernel.Vmspace.destroy vms ~charge_to:None
  | None -> ());
  Core.set_page_table env.core None;
  elapsed

let mmap_records store = store.m_records

(* ---------------- SpaceJMP design ---------------- *)

type sj_store = {
  s_ctx : Api.ctx;
  s_vh : Api.vh;
  mutable s_records : Record.t array;
  s_addrs : int array;
  s_flagstat : Ops.flagstat option ref;
}

let prepare_spacejmp ctx ~name records =
  let vas = Api.vas_create ctx ~name ~mode:0o666 in
  let span_estimate =
    Array.fold_left (fun acc r -> acc + Record.approx_bytes r) 0 records + Size.mib 1
  in
  let seg = Api.seg_alloc_anywhere ctx ~name:(name ^ ".data") ~size:span_estimate ~mode:0o666 in
  Api.seg_ctl ctx (`Cache_translations seg);
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  let addrs, span = layout_addrs (Segment.base seg) records in
  (* Build the pointer-rich structure inside the VAS (untimed prep):
     every record's bytes really live in segment memory. *)
  Api.vas_switch ctx vh;
  Api.store_bytes ctx ~va:(Segment.base seg)
    (region_image (Segment.base seg) records addrs span);
  Api.switch_home ctx;
  { s_ctx = ctx; s_vh = vh; s_records = records; s_addrs = addrs; s_flagstat = ref None }

let run_spacejmp store op =
  let ctx = store.s_ctx in
  let core = Api.core ctx in
  Machine.cool_caches (Api.machine (Api.system ctx));
  let t0 = Core.cycles core in
  Api.vas_switch ctx store.s_vh;
  let d = Ops.in_memory store.s_records ~addrs:store.s_addrs ~core in
  let result = run_op store.s_flagstat d op in
  (match op with Qname_sort | Coord_sort -> store.s_records <- result | Flagstat | Index -> ());
  (* Results stay in the address space for the next process. *)
  Api.switch_home ctx;
  Core.cycles core - t0

let spacejmp_records store = store.s_records
let spacejmp_flagstat store = !(store.s_flagstat)

let spacejmp_record_at store i =
  let ctx = store.s_ctx in
  Api.vas_switch ctx store.s_vh;
  let r = store.s_records.(i) in
  let data = Api.load_bytes ctx ~va:store.s_addrs.(i) ~len:(Record.approx_bytes r) in
  Api.switch_home ctx;
  fst (Bam.decode_record data ~pos:0)
