(** The four storage designs §5.4 compares, each able to run every
    operation:

    - [`Sam] / [`Bam] files on the in-memory FS: every run re-parses the
      serialized input into freshly allocated process memory, operates,
      and re-serializes the result — the conversion tax Fig. 11 shows.
    - mmap: records live region-style inside a file mapped into the
      process; runs pay mapping (demand faults over the region) but no
      conversion — Fig. 12's baseline.
    - SpaceJMP: records live as a pointer-rich structure in a persistent
      VAS; runs pay one [vas_switch] and operate directly.

    All [run_*] functions return the cycles consumed on the acting core,
    which is exactly what the Fig. 11/12 harness plots. *)

type op = Flagstat | Qname_sort | Coord_sort | Index

val op_name : op -> string
val all_ops : op list

type env = {
  machine : Sj_machine.Machine.t;
  fs : Sj_memfs.Memfs.t;
  core : Sj_machine.Machine.Core.core;
  refs : Record.reference list;
  flagstat : Ops.flagstat option ref;
}

val make_env : Sj_machine.Machine.t -> Sj_memfs.Memfs.t -> Sj_machine.Machine.Core.core -> env

(** {2 File designs} *)

val write_input_file :
  env -> format:[ `Sam | `Bam ] -> path:string -> Record.t array -> unit
(** Untimed preparation. *)

val run_file :
  env -> format:[ `Sam | `Bam ] -> op -> in_path:string -> out_path:string -> int
(** Read + deserialize + operate + serialize + write; returns cycles. *)

(** {2 mmap design} *)

type mmap_store

val prepare_mmap : env -> path:string -> Record.t array -> mmap_store
(** Build the region file: records laid out at fixed offsets. *)

val run_mmap : mmap_store -> op -> int

(** {2 SpaceJMP design} *)

type sj_store

val prepare_spacejmp : Sj_core.Api.ctx -> name:string -> Record.t array -> sj_store
(** Create the VAS + segment and build the record structure inside. *)

val run_spacejmp : sj_store -> op -> int

(** {2 Result access (for cross-design equivalence tests)} *)

val file_records : env -> format:[ `Sam | `Bam ] -> path:string -> Record.t array
val mmap_records : mmap_store -> Record.t array
val spacejmp_records : sj_store -> Record.t array

val spacejmp_record_at : sj_store -> int -> Record.t
(** Decode slot [i] of the original layout back out of segment memory
    (integrity check: the in-memory design really stores the bytes).
    Sorts record permutations; they do not rewrite the slots. *)

val flagstat_result : env -> Ops.flagstat option
(** The flagstat result of this environment's most recent Flagstat run
    (file and mmap designs). Scoped to the env — not process-global —
    so independent simulations never observe each other's results. *)

val spacejmp_flagstat : sj_store -> Ops.flagstat option
(** The flagstat result of this store's most recent Flagstat run. *)
