open Sj_util
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Vas = Sj_core.Vas
module Errors = Sj_core.Errors
module Error = Sj_abi.Error
module Prot = Sj_paging.Prot
module Core = Sj_machine.Machine.Core

type t = {
  name : string;
  vas_rw : Vas.t;
  vas_ro : Vas.t;
  seg : Segment.t;
  store : Store.t;
}

type client = {
  t : t;
  ctx : Api.ctx;
  vh_rw : Api.vh;
  vh_ro : Api.vh;
  scratch : Segment.t;
  scratch_heap : Sj_alloc.Mspace.t;
  mem : Kv_mem.t;
  mutable notify : Notify.t option;
}

(* Parsing/dispatch work RedisJMP still performs per command (command
   table lookup, argument vector, reply formatting) — markedly less than
   a socket server's event loop. Calibrated so a lone client sustains
   ~4x a lone classic-Redis client (Fig. 10a/b, sec 5.3). *)
let dispatch_overhead = 6_500

(* The batched path splits that overhead at the line a pipelined server
   actually draws: event-loop wakeup, readiness bookkeeping and the
   output-buffer flush happen once per burst; command-table lookup,
   argv construction and reply formatting remain per command. The two
   constants sum to [dispatch_overhead], so a burst of one costs
   exactly the single-command dispatch — batching only ever amortizes,
   it never invents savings. *)
let batch_wakeup_overhead = 5_000
let batch_per_command = 1_500

let init ctx ~name ~size =
  let vas_rw = Api.vas_create ctx ~name:(name ^ ".rw") ~mode:0o666 in
  let vas_ro = Api.vas_create ctx ~name:(name ^ ".ro") ~mode:0o666 in
  (* No cached translations: the store segment must stay growable
     (attach caching only amortizes setup cost, which is off every
     measured path). *)
  let seg = Api.seg_alloc_anywhere ctx ~name:(name ^ ".data") ~size ~mode:0o666 in
  Api.seg_attach ctx vas_rw seg ~prot:Prot.rw;
  Api.seg_attach ctx vas_ro seg ~prot:Prot.r;
  (* Run the server initialization code inside the new address space:
     set up the dict with a throwaway backend; real clients install
     their own. *)
  let boot_mem =
    {
      Kv_mem.alloc = (fun _ -> Error.fail Invalid ~op:"redisjmp_init" "boot backend cannot allocate");
      free = ignore;
      read = (fun ~va:_ ~len -> Bytes.create len);
      write = (fun ~va:_ _ -> ());
      touch = (fun ~va:_ -> ());
    }
  in
  { name; vas_rw; vas_ro; seg; store = Store.create boot_mem }

(* Stores are registered in the owning system's registry (service map),
   not in a process-global table: a fresh system starts with no stores,
   and concurrent simulations cannot see each other's. *)
type Sj_core.Registry.service += Store_service of t

let service_name name = "redisjmp:" ^ name

let init ctx ~name ~size =
  let reg = Api.registry (Api.system ctx) in
  (match Sj_core.Registry.find_service reg ~name:(service_name name) with
  | Some _ -> Error.fail Name_exists ~op:"redisjmp_init" ("store exists: " ^ name)
  | None -> ());
  let t = init ctx ~name ~size in
  Sj_core.Registry.set_service reg ~name:(service_name name) (Store_service t);
  t

let find ctx ~name =
  match Sj_core.Registry.find_service (Api.registry (Api.system ctx)) ~name:(service_name name) with
  | Some (Store_service t) -> t
  | Some _ | None -> raise (Errors.Unknown_name name)

let connect t ctx ?(scratch_size = Size.mib 1) () =
  let vh_rw = Api.vas_attach ctx (Api.vas_find ctx ~name:(t.name ^ ".rw")) in
  let vh_ro = Api.vas_attach ctx (Api.vas_find ctx ~name:(t.name ^ ".ro")) in
  let pid = Sj_kernel.Process.pid (Api.process ctx) in
  let scratch =
    Api.seg_alloc_anywhere ctx
      ~name:(Printf.sprintf "%s.scratch.%d" t.name pid)
      ~size:scratch_size ~mode:0o600
  in
  Api.seg_attach_local ctx vh_rw scratch ~prot:Prot.rw;
  Api.seg_attach_local ctx vh_ro scratch ~prot:Prot.rw;
  let scratch_heap = Sj_alloc.Mspace.create ~base:(Segment.base scratch) ~size:scratch_size in
  { t; ctx; vh_rw; vh_ro; scratch; scratch_heap; mem = Kv_mem.segment_heap ctx t.seg; notify = None }

let enable_notifications c service = c.notify <- Some service

(* Keyspace events (Redis __keyspace__-style), published through the
   dedicated service since there is no server process to push from. *)
let keyspace_channel key = "keyspace:" ^ key

let event_of_command : Resp.command -> (string * string) option = function
  | Set (k, _) -> Some (k, "set")
  | Del k -> Some (k, "del")
  | Incr k -> Some (k, "incr")
  | Append (k, _) -> Some (k, "append")
  | Setnx (k, _) -> Some (k, "setnx")
  | Getset (k, _) -> Some (k, "getset")
  | Flushall -> Some ("*", "flushall")
  | Get _ | Exists _ | Strlen _ | Mget _ | Dbsize | Ping -> None

let is_write_command : Resp.command -> bool = function
  | Set _ | Del _ | Incr _ | Append _ | Setnx _ | Getset _ | Flushall -> true
  | Get _ | Exists _ | Strlen _ | Mget _ | Dbsize | Ping -> false

(* Per-request scratch use: parse buffers + argument objects, allocated
   and released in the client's private scratch heap. *)
let with_scratch_charged c ~overhead f =
  let core = Api.core c.ctx in
  Core.charge core overhead;
  let a = Sj_alloc.Mspace.malloc c.scratch_heap 64 in
  let b = Sj_alloc.Mspace.malloc c.scratch_heap 128 in
  let r = f () in
  Option.iter (Sj_alloc.Mspace.free c.scratch_heap) b;
  Option.iter (Sj_alloc.Mspace.free c.scratch_heap) a;
  r

let with_scratch c f = with_scratch_charged c ~overhead:dispatch_overhead f

let execute_with ~switch c cmd =
  let dict = Store.dict c.t.store in
  if is_write_command cmd then begin
    (* Exclusive path: switch in read-write, catch up deferred
       rehashing now that no readers can observe us. *)
    switch c.ctx c.vh_rw;
    Dict.set_mem dict c.mem;
    Dict.set_rehash_allowed dict true;
    if Dict.rehash_pending dict then Dict.force_rehash_step dict 4;
    (* Store memory may run out mid-command. Holding the exclusive lock,
       the acting client grows the shared segment and retries — no other
       client participates (the sec 1 claim: no synchronization "on
       shared region management"). Readers observe the larger segment at
       their next switch. *)
    let rec run_growing attempts =
      try with_scratch c (fun () -> Store.execute c.t.store cmd)
      with Sj_mem.Phys_mem.Out_of_memory when attempts > 0 ->
        Api.switch_home c.ctx;
        Api.seg_ctl c.ctx (`Grow (c.t.seg, Segment.size c.t.seg));
        switch c.ctx c.vh_rw;
        Dict.set_mem dict c.mem;
        run_growing (attempts - 1)
    in
    let reply = run_growing 4 in
    Api.switch_home c.ctx;
    (match (c.notify, event_of_command cmd) with
    | Some service, Some (key, event) ->
      ignore
        (Notify.publish service ~from:(Api.core c.ctx) ~channel:(keyspace_channel key)
           (Bytes.of_string event))
    | _ -> ());
    reply
  end
  else begin
    (* Shared path: read-only mapping, rehashing disabled. *)
    switch c.ctx c.vh_ro;
    Dict.set_mem dict c.mem;
    Dict.set_rehash_allowed dict false;
    let reply = with_scratch c (fun () -> Store.execute c.t.store cmd) in
    Dict.set_rehash_allowed dict true;
    Api.switch_home c.ctx;
    reply
  end

let execute c cmd = execute_with ~switch:Api.vas_switch c cmd

(* Same jump, but admission goes through the bounded deterministic
   retry loop: a client that finds the segment lock wedged (e.g. by a
   crashed holder not yet reclaimed) backs off in simulated cycles
   instead of faulting on the first conflict. *)
let execute_retry ?attempts ?backoff_cycles c cmd =
  let switch ctx vh =
    match Api.Checked.switch_retry ?attempts ?backoff_cycles ctx vh with
    | Ok () -> ()
    | Error f -> raise (Error.Fault f)
  in
  try Ok (execute_with ~switch c cmd)
  with Error.Fault f when f.code = Error.Would_block -> Error f

(* Batched execution: one switch, one lock admission and one event-loop
   wakeup cover the whole burst (the cluster server's drain path). A
   burst containing any write takes the exclusive rw mapping for all of
   it — the shard server owns its segment, so batching reads under the
   exclusive lock costs readers nothing they weren't already paying.
   Replies come back in command order; the mid-burst out-of-memory case
   grows the segment under the held lock and resumes at the failing
   command (completed replies are kept, nothing re-executes). *)
let execute_batch_with ~switch c cmds =
  let n = Array.length cmds in
  if n = 0 then [||]
  else begin
    let dict = Store.dict c.t.store in
    let any_write = Array.exists is_write_command cmds in
    let vh = if any_write then c.vh_rw else c.vh_ro in
    switch c.ctx vh;
    Dict.set_mem dict c.mem;
    Dict.set_rehash_allowed dict any_write;
    if any_write && Dict.rehash_pending dict then Dict.force_rehash_step dict 4;
    Core.charge (Api.core c.ctx) batch_wakeup_overhead;
    let replies = Array.make n Resp.Ok_simple in
    let i = ref 0 in
    let rec run_growing attempts =
      try
        while !i < n do
          replies.(!i) <-
            with_scratch_charged c ~overhead:batch_per_command (fun () ->
                Store.execute c.t.store cmds.(!i));
          incr i
        done
      with Sj_mem.Phys_mem.Out_of_memory when attempts > 0 && any_write ->
        Api.switch_home c.ctx;
        Api.seg_ctl c.ctx (`Grow (c.t.seg, Segment.size c.t.seg));
        switch c.ctx vh;
        Dict.set_mem dict c.mem;
        run_growing (attempts - 1)
    in
    run_growing 4;
    if not any_write then Dict.set_rehash_allowed dict true;
    Api.switch_home c.ctx;
    (match c.notify with
    | Some service ->
      Array.iter
        (fun cmd ->
          match event_of_command cmd with
          | Some (key, event) ->
            ignore
              (Notify.publish service ~from:(Api.core c.ctx)
                 ~channel:(keyspace_channel key) (Bytes.of_string event))
          | None -> ())
        cmds
    | None -> ());
    replies
  end

let execute_batch c cmds = execute_batch_with ~switch:Api.vas_switch c cmds

let execute_batch_retry ?attempts ?backoff_cycles c cmds =
  let switch ctx vh =
    match Api.Checked.switch_retry ?attempts ?backoff_cycles ctx vh with
    | Ok () -> ()
    | Error f -> raise (Error.Fault f)
  in
  try Ok (execute_batch_with ~switch c cmds)
  with Error.Fault f when f.code = Error.Would_block -> Error f

let get c key = match execute c (Resp.Get key) with Bulk v -> Some v | _ -> None

let set c key v =
  match execute c (Resp.Set (key, v)) with
  | Ok_simple -> ()
  | _ -> Error.fail Invalid ~op:"redisjmp_set" "unexpected reply"

let store t = t.store
let data_segment t = t.seg
let name t = t.name
let rw_vas t = t.vas_rw
