open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Api = Sj_core.Api
module Registry = Sj_core.Registry
module Engine = Sj_des.Engine
module Resource = Sj_des.Resource

type mode = Redisjmp of { tags : bool } | Redis of { instances : int }

type config = {
  platform : Platform.t;
  clients : int;
  set_fraction : float;
  value_size : int;
  keyspace : int;
  duration_cycles : int;
  cores : int;
  force_exclusive : bool;
  mode : mode;
  seed : int;
}

let default_config =
  {
    platform = Platform.m1;
    clients = 1;
    set_fraction = 0.0;
    value_size = 4;
    keyspace = 1000;
    duration_cycles = 50_000_000;
    cores = 12;
    force_exclusive = false;
    mode = Redisjmp { tags = false };
    seed = 11;
  }

type result = {
  requests : int;
  gets : int;
  sets : int;
  seconds : float;
  throughput : float;
  lock_wait_cycles : int;
  switches : int;
  tlb_misses : int;
}

(* Acquire/release of the kernel rwlock is a short serialized critical
   section (cache-line RMW + wait-queue bookkeeping). *)
let lock_mgr_section = 1_200

(* The request loops are the simulator's hottest paths: every request
   used to Printf a fresh key string and allocate a fresh value buffer,
   which dominated host-side time. Precompute the whole keyspace once
   per run and share one value buffer — the store copies request bytes
   into simulated memory, so reuse is safe. *)
let make_key_pool cfg = Array.init cfg.keyspace (Printf.sprintf "key:%06d")
let key_of keys rng cfg = keys.(Rng.int rng cfg.keyspace)

(* ---------------- RedisJMP ---------------- *)

let run_redisjmp cfg ~tags =
  let machine = Machine.create cfg.platform in
  let ncores_machine = Platform.total_cores cfg.platform in
  let sys = Api.boot ~backend:Api.Dragonfly machine in
  (* Bootstrap: first client initializes and pre-populates the store. *)
  let boot_proc = Process.create ~name:"boot" machine in
  let boot_ctx = Api.context sys boot_proc (Machine.core machine 0) in
  let store = Redisjmp.init boot_ctx ~name:"redis" ~size:(Size.mib 64) in
  if tags then begin
    Api.vas_ctl boot_ctx (`Request_tag (Api.vas_find boot_ctx ~name:"redis.rw"));
    Api.vas_ctl boot_ctx (`Request_tag (Api.vas_find boot_ctx ~name:"redis.ro"))
  end;
  let boot_client = Redisjmp.connect store boot_ctx () in
  let keys = make_key_pool cfg in
  let value = Bytes.create cfg.value_size in
  let seed_rng = Rng.create ~seed:cfg.seed in
  for i = 0 to cfg.keyspace - 1 do
    ignore seed_rng;
    Redisjmp.set boot_client keys.(i) value
  done;
  (* Clients. *)
  let clients =
    Array.init cfg.clients (fun i ->
        let proc = Process.create ~name:(Printf.sprintf "client%d" i) machine in
        let core = Machine.core machine (i mod ncores_machine) in
        let ctx = Api.context sys proc core in
        (Redisjmp.connect store ctx (), core, Rng.create ~seed:(cfg.seed + (31 * i) + 1)))
  in
  let reg = Api.registry sys in
  Registry.reset_stats reg;
  Array.iter (fun c -> Sj_tlb.Tlb.reset_stats (Core.tlb (Machine.core machine c)))
    (Array.init ncores_machine Fun.id);
  (* Discrete-event harness. *)
  let eng = Engine.create () in
  let cores = Resource.Cores.create eng ~n:cfg.cores in
  let lock = Resource.Rwlock.create eng in
  let lock_mgr = Resource.Cores.create eng ~n:1 in
  let completed = ref 0 and gets = ref 0 and sets = ref 0 in
  let rec client_loop (client, core, rng) () =
    if Engine.now eng < cfg.duration_cycles then begin
      let is_set = Rng.float rng 1.0 < cfg.set_fraction in
      let lock_write = is_set || cfg.force_exclusive in
      let key = key_of keys rng cfg in
      (* Lock-manager critical section, then the rwlock itself. *)
      Resource.Cores.exec lock_mgr ~cycles:lock_mgr_section (fun () ->
          Resource.Rwlock.acquire lock ~write:lock_write (fun () ->
              (* Service time: run the real operation on the simulated core. *)
              let t0 = Core.cycles core in
              (if is_set then Redisjmp.set client key value
               else ignore (Redisjmp.get client key));
              let service = Core.cycles core - t0 in
              Resource.Cores.exec cores ~cycles:service (fun () ->
                  Resource.Cores.exec lock_mgr ~cycles:lock_mgr_section (fun () ->
                      Resource.Rwlock.release lock ~write:lock_write;
                      incr completed;
                      if is_set then incr sets else incr gets;
                      client_loop (client, core, rng) ()))))
    end
  in
  Array.iter (fun c -> client_loop c ()) clients;
  Engine.run ~until:cfg.duration_cycles eng;
  let seconds =
    Sj_machine.Cost_model.cycles_to_seconds (Machine.cost machine) cfg.duration_cycles
  in
  let tlb_misses =
    Array.fold_left
      (fun acc i -> acc + (Sj_tlb.Tlb.stats (Core.tlb (Machine.core machine i))).misses)
      0
      (Array.init ncores_machine Fun.id)
  in
  {
    requests = !completed;
    gets = !gets;
    sets = !sets;
    seconds;
    throughput = float_of_int !completed /. seconds;
    lock_wait_cycles = Resource.Rwlock.wait_cycles lock;
    switches = Registry.switch_count reg;
    tlb_misses;
  }

(* ---------------- Classic Redis ---------------- *)

let run_redis cfg ~instances =
  let machine = Machine.create cfg.platform in
  let keys = make_key_pool cfg in
  let value = Bytes.create cfg.value_size in
  let ncores_machine = Platform.total_cores cfg.platform in
  (* Server instances pinned to distinct cores. *)
  let servers =
    Array.init instances (fun i ->
        Server.create machine
          ~core:(Machine.core machine (i mod ncores_machine))
          ~heap_size:(Size.mib 64))
  in
  (* Pre-populate each instance (clients shard by instance). *)
  Array.iteri
    (fun i server ->
      let seeder =
        Server.connect server ~core:(Machine.core machine ((instances + i) mod ncores_machine))
      in
      for k = 0 to cfg.keyspace - 1 do
        ignore (Server.request seeder (Resp.Set (keys.(k), value)))
      done)
    servers;
  let clients =
    Array.init cfg.clients (fun i ->
        let inst = i mod instances in
        let core = Machine.core machine ((instances + i) mod ncores_machine) in
        (Server.connect servers.(inst) ~core, inst, core, Rng.create ~seed:(cfg.seed + (37 * i) + 5)))
  in
  let eng = Engine.create () in
  (* Each server instance owns one core; clients share the remainder. *)
  let server_cores = Array.init instances (fun _ -> Resource.Cores.create eng ~n:1) in
  let client_cores = Resource.Cores.create eng ~n:(max 1 (cfg.cores - instances)) in
  let completed = ref 0 and gets = ref 0 and sets = ref 0 in
  let rec client_loop (conn, inst, core, rng) () =
    if Engine.now eng < cfg.duration_cycles then begin
      let is_set = Rng.float rng 1.0 < cfg.set_fraction in
      let key = key_of keys rng cfg in
      (* Execute the real request once, attributing client-side and
         server-side cycles to the right resources. *)
      let server = servers.(inst) in
      let c0 = Core.cycles core and s0 = Core.cycles (Server.core server) in
      let cmd = if is_set then Resp.Set (key, value) else Resp.Get key in
      ignore (Server.request conn cmd);
      let client_cycles = Core.cycles core - c0 in
      let server_cycles = Core.cycles (Server.core server) - s0 in
      (* Pipeline through the resources: client prepares/sends, server
         processes, client receives. *)
      Resource.Cores.exec client_cores ~cycles:(client_cycles / 2) (fun () ->
          Resource.Cores.exec server_cores.(inst) ~cycles:server_cycles (fun () ->
              Resource.Cores.exec client_cores ~cycles:(client_cycles / 2) (fun () ->
                  incr completed;
                  if is_set then incr sets else incr gets;
                  client_loop (conn, inst, core, rng) ())))
    end
  in
  Array.iter (fun c -> client_loop c ()) clients;
  Engine.run ~until:cfg.duration_cycles eng;
  let seconds =
    Sj_machine.Cost_model.cycles_to_seconds (Machine.cost machine) cfg.duration_cycles
  in
  {
    requests = !completed;
    gets = !gets;
    sets = !sets;
    seconds;
    throughput = float_of_int !completed /. seconds;
    lock_wait_cycles = 0;
    switches = 0;
    tlb_misses = 0;
  }

let run cfg =
  match cfg.mode with
  | Redisjmp { tags } -> run_redisjmp cfg ~tags
  | Redis { instances } -> run_redis cfg ~instances
