(** Fork-serving KV store: one request stream, two process
    architectures. [Prefork] forks a worker pool once at boot and
    serves steady-state with zero copy-on-write faults; [Fork_per_conn]
    forks a fresh child per connection which serves its batch against a
    [vas_fork] snapshot of the store — paying the per-connection
    CoW-fault storm the bench quantifies, and discarding its SETs with
    the snapshot (the parent's store is never written). *)

type mode = Prefork of { workers : int } | Fork_per_conn

val mode_name : mode -> string

type config = {
  platform : Sj_machine.Platform.t;
  mode : mode;
  connections : int;
  requests_per_conn : int;
  set_fraction : float;
  keyspace : int;  (** slots actually seeded and addressed *)
  store_size : int;  (** segment size: the page-table-sharing axis *)
  ring_slots : int;  (** response ring entries (64 B each) per worker *)
  cores : int;  (** DES service-core pool *)
  interarrival : int;  (** cycles between connection arrivals *)
  seed : int;
}

val default : config
(** 256 MiB store — big enough that a forked family shares >90% of its
    page-table nodes even after the private region is re-replicated. *)

type result = {
  requests : int;
  connections : int;
  seconds : float;
  throughput : float;  (** requests per simulated second *)
  p50 : float;  (** per-request service cycles *)
  p99 : float;
  forks : int;
  cow_faults : int;
  steady_cow_faults : int;  (** prefork: faults after the warmup pass *)
  cow_copies : int;
  share_total : int;  (** fork page-table census (first fork) *)
  share_shared : int;
  checksum_before : int;
  checksum_after : int;
  pt_leaked : int;
  pt_imbalanced : int;
  fingerprint : (string * int) list;
}

val run : config -> result
(** Deterministic: same config, same fingerprint — under reruns,
    tracing, empty fault plans and domain pools alike. Each run builds
    its own machine and recorder. *)
