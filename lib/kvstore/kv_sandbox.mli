(** Sandboxed plugins for RedisJMP over protection-key compartments.

    The server-less RedisJMP design (§5.3) has clients execute store
    code themselves by switching into the store's VAS — which means an
    untrusted handler ("plugin") invited into that address space could
    touch anything in it. Compartments close the gap without giving up
    the shared space: the store's data segment is tagged with a
    host-owned key at {!install}, each plugin gets a scratch segment
    tagged with its own key at {!connect}, and {!run} executes the
    handler with the core's key register narrowed to the plugin's
    compartment ([pkey_switch] — one register write, no CR3 reload, no
    TLB flush, the store's cached translations stay warm).

    A handler access outside its compartment lands as the typed
    [Key_violation] fault; {!run} catches it, restores the unrestricted
    view, and reports {!Violation} — the store survives and stays
    consistent. A fault-injected kill mid-handler runs the ordinary
    crash teardown, which also releases the dead plugin's keys
    ({!Killed}). *)

type t
(** A sandbox installed over one RedisJMP store: the store's data
    segment is key-tagged, so only the unrestricted (host) view — and
    no compartment — can touch it. *)

type plugin
(** A connected plugin runner: its own attachment to the store's VAS,
    a private key-tagged scratch segment, and its compartment key
    (owned by the plugin's process — reclaimed if it dies). *)

(** One step of a handler program, interpreted by {!run}. Offsets are
    bytes into the plugin's scratch segment ([Read]/[Write]) or into
    the store's data segment ([Peek_store]/[Poke_store] — the hostile
    accesses a compartment must not be able to make). *)
type step =
  | Compute of int  (** charge simulated cycles of handler work *)
  | Read of int
  | Write of int * int64
  | Peek_store of int
  | Poke_store of int * int64

type outcome =
  | Done of int64  (** handler finished; last value read *)
  | Violation of Sj_abi.Error.t
      (** a [Peek_store]/[Poke_store] was denied by the key register;
          the host caught the typed fault and the store survives *)
  | Killed of int
      (** the fault injector killed the plugin's process (pid) mid-run;
          crash teardown reclaimed its locks, attachments and keys *)

val install : Sj_core.Api.ctx -> Redisjmp.t -> t
(** Tag the store's data segment with a freshly allocated host key.
    The host context keeps the unrestricted view; every compartment is
    locked out of the data from here on. *)

val connect : t -> Sj_core.Api.ctx -> ?plugin_size:int -> unit -> plugin
(** Give the calling (plugin) process a scratch segment inside the
    store's VAS, tagged with a key the plugin process owns, plus an
    attachment to run in. [plugin_size] defaults to 64 KiB. *)

val run : plugin -> program:step list -> outcome
(** Execute one handler invocation inside the plugin's compartment. *)

val data_key : t -> int
val plugin_key : plugin -> int
val plugin_segment : plugin -> Sj_core.Segment.t
val sandbox_of : plugin -> t
