(** Availability-under-faults harness for RedisJMP.

    Measures what the SpaceJMP model buys when a lock holder dies: a
    writer is killed by the fault injector ({!Sj_fault.Injector}) while
    holding the store segment's exclusive lock, reader clients keep
    issuing requests through the bounded retry path
    ({!Redisjmp.execute_retry}), and the run reports how long the lock
    stayed wedged, what the survivors paid in charged backoff, and how
    expensive the kernel's crash reclamation was — all in simulated
    cycles on the core that did the work. Deterministic: same config,
    same numbers. *)

type config = {
  platform : Sj_machine.Platform.t;
  backend : Sj_core.Api.backend;
  clients : int;  (** surviving reader clients *)
  requests_per_client : int;  (** per phase: healthy, storm, recovered *)
  value_size : int;
  keyspace : int;
  retry_attempts : int;  (** switch_retry budget per request *)
  backoff_cycles : int;  (** switch_retry backoff unit *)
  victim_work_cycles : int;
      (** cycles the victim computes inside the space while holding the
          lock, before the kill fires *)
  seed : int;
}

val default_config : config
(** M1, Dragonfly backend, 4 survivors, 32 requests per phase. *)

type result = {
  served_before : int;  (** requests served before the lock wedged *)
  stalled_requests : int;
      (** requests whose full retry budget ran out during the outage *)
  stall_cycles : int;
      (** survivor-core cycles burned on stalled requests (incl. the
          charged backoff) *)
  outage_cycles : int;
      (** victim-core cycles from lock acquisition to reclamation *)
  recovery_cycles : int;
      (** victim-core cycles the crash teardown itself took *)
  served_after : int;  (** requests served after reclamation *)
  crashes : int;  (** [Proc_crash] events observed (expected 1) *)
  lock_reclaims : int;  (** [Lock_reclaim] events observed *)
  survivors_ok : bool;
      (** the victim died, and every survivor request outside the
          outage window completed *)
  lock_free : bool;  (** data segment unlocked at the end *)
  orphan_served : bool;
      (** a process created after the crash attached to the orphaned
          VAS and round-tripped a write *)
}

val run : config -> result
