(* Sandboxed plugins for RedisJMP, built on protection-key
   compartments. The untrusted handler runs *inside* the store's
   read-write VAS — same address space, warm TLB — but key-restricted:
   the store's data segment is tagged with a host-owned key, the
   plugin's scratch segment with a plugin-owned key, and the handler
   executes with its register narrowed to its own compartment. A stray
   access to the store lands as the typed [Key_violation] fault, which
   the host catches and survives; an injected kill mid-handler runs the
   ordinary crash teardown, which also reclaims the dead plugin's
   keys. *)

open Sj_util
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Error = Sj_abi.Error
module Prot = Sj_paging.Prot
module Core = Sj_machine.Machine.Core

type t = {
  store : Redisjmp.t;
  vas_rw : Sj_core.Vas.t;
  data_key : int;
}

type plugin = {
  sandbox : t;
  ctx : Api.ctx;
  vh : Api.vh;
  seg : Segment.t;
  key : int;
}

type step =
  | Compute of int
  | Read of int
  | Write of int * int64
  | Peek_store of int
  | Poke_store of int * int64

type outcome = Done of int64 | Violation of Error.t | Killed of int

let install ctx store =
  let vas_rw = Redisjmp.rw_vas store in
  let data_key = Api.pkey_alloc ctx vas_rw in
  Api.pkey_assign ctx vas_rw (Redisjmp.data_segment store) ~key:data_key;
  { store; vas_rw; data_key }

let connect t ctx ?(plugin_size = Size.kib 64) () =
  let pid = Sj_kernel.Process.pid (Api.process ctx) in
  let seg =
    Api.seg_alloc_anywhere ctx
      ~name:(Printf.sprintf "%s.plugin.%d" (Redisjmp.name t.store) pid)
      ~size:plugin_size ~mode:0o600
  in
  (* The scratch is attached VAS-globally so it can be key-tagged; its
     tag keeps other compartments (and hostile plugins) out of it just
     as the data key keeps this plugin out of the store. *)
  Api.seg_attach ctx t.vas_rw seg ~prot:Prot.rw;
  let key = Api.pkey_alloc ctx t.vas_rw in
  Api.pkey_assign ctx t.vas_rw seg ~key;
  let vh = Api.vas_attach ctx t.vas_rw in
  { sandbox = t; ctx; vh; seg; key }

(* One handler invocation: jump into the store's VAS, narrow the key
   register to the plugin's compartment (a pure register write — no CR3
   reload, no TLB flush), interpret the handler program, widen and jump
   home. Every boundary is an ABI call, so the fault injector can kill
   the plugin at any of them. *)
let run p ~program =
  let ctx = p.ctx in
  let base = Segment.base p.seg in
  let data_base = Segment.base (Redisjmp.data_segment p.sandbox.store) in
  try
    Api.vas_switch ctx p.vh;
    Api.pkey_switch ctx ~key:p.key;
    let acc = ref 0L in
    List.iter
      (fun step ->
        match step with
        | Compute cycles -> Core.charge (Api.core ctx) cycles
        | Read off -> acc := Api.load64 ctx ~va:(base + off)
        | Write (off, v) -> Api.store64 ctx ~va:(base + off) v
        | Peek_store off -> acc := Api.load64 ctx ~va:(data_base + off)
        | Poke_store (off, v) -> Api.store64 ctx ~va:(data_base + off) v)
      program;
    Api.pkey_switch ctx ~key:0;
    Api.switch_home ctx;
    Done !acc
  with
  | Error.Fault f when f.code = Error.Key_violation ->
    (* The denied access changed nothing: leave the compartment and the
       VAS, hand the typed fault to the host. The store survives. *)
    Api.pkey_switch ctx ~key:0;
    Api.switch_home ctx;
    Violation f
  | Sj_fault.Injector.Killed { pid; _ } ->
    (* Crash teardown already ran: locks reclaimed, attachments
       destroyed, and the dead plugin's keys freed back to the VAS. *)
    Killed pid

let data_key t = t.data_key
let plugin_key p = p.key
let plugin_segment p = p.seg
let sandbox_of p = p.sandbox
