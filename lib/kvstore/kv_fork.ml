(* Fork-serving KV store: the same request stream served by two process
   architectures, so the cost of forking in a multi-VAS world is
   directly measurable.

   - [Prefork]        W workers are [proc_fork]ed once at boot, each on
                      its own core, and kept for the whole run. A
                      request is: switch into the store VAS, touch the
                      slot, write the response into the worker's
                      private data ring, switch home. After the warmup
                      pass privatized the ring, steady state takes ZERO
                      copy-on-write faults.
   - [Fork_per_conn]  every connection [proc_fork]s a fresh child which
                      then [vas_fork]s the store VAS and serves its
                      whole batch against that snapshot: GETs read
                      through the shared subtrees, SETs break-and-copy
                      into the snapshot (discarded with it), the
                      child's connection bookkeeping breaks pages of
                      its CoW primary space, and response writes fault
                      in the attachment replica — the per-connection
                      fault storm the bench quantifies. The parent's
                      store is never written.

   Each run builds its own machine and recorder (enabled regardless of
   ambient tracing, so the trace-on audit cannot change behaviour). The
   measured per-request service cycles come from the simulated core;
   the DES engine then replays connection arrivals against a bounded
   core pool for throughput. All claims the driver checks (fault-storm
   presence/absence, parent-checksum stability, >90% page-table
   sharing) are computed here, next to the workload. *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Layout = Sj_kernel.Layout
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Vas = Sj_core.Vas
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics
module Engine = Sj_des.Engine
module Resource = Sj_des.Resource

type mode = Prefork of { workers : int } | Fork_per_conn

let mode_name = function
  | Prefork _ -> "prefork"
  | Fork_per_conn -> "fork_per_conn"

type config = {
  platform : Platform.t;
  mode : mode;
  connections : int;
  requests_per_conn : int;
  set_fraction : float;
  keyspace : int;  (* slots actually seeded and addressed *)
  store_size : int;  (* segment size: the page-table-sharing axis *)
  ring_slots : int;  (* response ring entries (64 B each) per worker *)
  cores : int;  (* DES service-core pool *)
  interarrival : int;  (* cycles between connection arrivals *)
  seed : int;
}

(* 256 MiB store: big enough that a forked family shares >90% of its
   page-table nodes even after the private region is re-replicated. *)
let default =
  {
    platform = Platform.m2;
    mode = Fork_per_conn;
    connections = 24;
    requests_per_conn = 24;
    set_fraction = 0.25;
    keyspace = 2_048;
    store_size = Size.mib 256;
    ring_slots = 256;
    cores = 8;
    interarrival = 25_000;
    seed = 0xF0F;
  }

type result = {
  requests : int;
  connections : int;
  seconds : float;
  throughput : float;  (* requests per simulated second *)
  p50 : float;  (* per-request service cycles *)
  p99 : float;
  forks : int;
  cow_faults : int;
  steady_cow_faults : int;  (* prefork: faults after the warmup pass *)
  cow_copies : int;
  share_total : int;  (* fork page-table census (first fork) *)
  share_shared : int;
  checksum_before : int;
  checksum_after : int;
  pt_leaked : int;
  pt_imbalanced : int;
  fingerprint : (string * int) list;
}

let slot_bytes = 64
let words_per_slot = slot_bytes / 8

(* Deterministic slot contents: a mix of (seed, slot, word) so the GET
   checksums prove the reads hit real per-slot data. *)
let word_value ~seed ~slot ~word =
  let x = (seed * 0x9E3779B1) lxor (slot * 0x85EBCA77) lxor (word * 0xC2B2AE35) in
  Int64.of_int (x land 0x3FFF_FFFF)

let run cfg =
  if cfg.keyspace * slot_bytes > cfg.store_size then
    invalid_arg "Kv_fork.run: keyspace does not fit the store";
  let machine = Machine.create cfg.platform in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx machine) rec_;
  let mets = Recorder.metrics rec_ in
  let sys = Api.boot ~backend:Api.Dragonfly machine in
  let ncores = Platform.total_cores cfg.platform in
  let parent_proc = Process.create ~name:"kvf" machine in
  let parent = Api.context sys parent_proc (Machine.core machine 0) in
  (* The store: one big segment in one VAS, seeded over the keyspace. *)
  let vas = Api.vas_create parent ~name:"kvf.store" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere parent ~name:"kvf.data" ~size:cfg.store_size ~mode:0o600 in
  Api.seg_attach parent vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach parent vas in
  let base = Segment.base seg in
  let slot_va slot = base + (slot * slot_bytes) in
  Api.vas_switch parent vh;
  for s = 0 to cfg.keyspace - 1 do
    for w = 0 to words_per_slot - 1 do
      Api.store64 parent ~va:(slot_va s + (8 * w)) (word_value ~seed:cfg.seed ~slot:s ~word:w)
    done
  done;
  (* Sampled store checksum, from the parent's own live view. *)
  let store_checksum () =
    let acc = ref 17 in
    for s = 0 to cfg.keyspace - 1 do
      acc :=
        ((!acc * 1_000_003) + Int64.to_int (Api.load64 parent ~va:(slot_va s))) land max_int
    done;
    !acc
  in
  let checksum_before = store_checksum () in
  Api.switch_home parent;
  let rng = Rng.create ~seed:cfg.seed in
  let total_requests = cfg.connections * cfg.requests_per_conn in
  let latencies = Array.make total_requests 0.0 in
  let setups = Array.make cfg.connections 0 in
  let share_total = ref 0 and share_shared = ref 0 in
  let steady0 = ref 0 in
  (* One request on [ctx]'s simulated core: touch the slot (GET folds
     its words; SET overwrites them), then write an 8-word response
     into the private data ring — the CoW-storm surface. *)
  let ring_base = Layout.data_base + Size.kib 64 in
  (* Per-connection bookkeeping the worker writes in its own (CoW)
     primary space before serving: each page is a guaranteed
     break-and-copy, so even a read-only request mix pays the storm. *)
  let scratch_base = Layout.data_base + Size.kib 128 in
  let scratch_pages = 4 in
  let do_request ctx ~req =
    let slot = Rng.int rng cfg.keyspace in
    let is_set = Rng.float rng 1.0 < cfg.set_fraction in
    let sink = ref 0L in
    if is_set then
      for w = 0 to words_per_slot - 1 do
        Api.store64 ctx ~va:(slot_va slot + (8 * w))
          (word_value ~seed:(cfg.seed + 1) ~slot ~word:w)
      done
    else
      for w = 0 to words_per_slot - 1 do
        sink := Int64.add !sink (Api.load64 ctx ~va:(slot_va slot + (8 * w)))
      done;
    let entry = ring_base + (req mod cfg.ring_slots * slot_bytes) in
    for w = 0 to words_per_slot - 1 do
      Api.store64 ctx ~va:(entry + (8 * w)) !sink
    done
  in
  (match cfg.mode with
  | Fork_per_conn ->
    for conn = 0 to cfg.connections - 1 do
      let core = Machine.core machine (1 + (conn mod (ncores - 1))) in
      let c0 = Core.cycles core in
      let child = Api.proc_fork ~name:(Printf.sprintf "conn%d" conn) parent ~core in
      for pg = 0 to scratch_pages - 1 do
        Api.store64 child
          ~va:(scratch_base + (pg * Addr.page_size))
          (Int64.of_int (conn + pg))
      done;
      let vh_c = Api.vas_attach child vas in
      let snap = Api.vas_fork child vh_c ~name:(Printf.sprintf "snap%d" conn) in
      if conn = 0 then begin
        let total, shared =
          Page_table.count_nodes (Sj_kernel.Vmspace.page_table (Api.vmspace_of_vh snap))
        in
        share_total := total;
        share_shared := shared
      end;
      Api.vas_switch child snap;
      setups.(conn) <- Core.cycles core - c0;
      for r = 0 to cfg.requests_per_conn - 1 do
        let t0 = Core.cycles core in
        do_request child ~req:r;
        latencies.((conn * cfg.requests_per_conn) + r) <- float_of_int (Core.cycles core - t0)
      done;
      (* Connection over: the snapshot (with every SET the connection
         made) is discarded; the child exits. *)
      Api.switch_home child;
      Api.vas_detach child snap;
      let snap_vas = Api.vas_of_vh snap in
      let shadow = Api.seg_find child ~name:(Printf.sprintf "kvf.data@snap%d" conn) in
      Api.vas_ctl child (`Destroy snap_vas);
      Api.seg_ctl child (`Destroy shadow);
      Api.exit_process child
    done
  | Prefork { workers } ->
    let workers = max 1 (min workers (ncores - 1)) in
    let pool =
      Array.init workers (fun w ->
          let core = Machine.core machine (1 + w) in
          let child = Api.proc_fork ~name:(Printf.sprintf "worker%d" w) parent ~core in
          let vh_w = Api.vas_attach child vas in
          (child, vh_w, core))
    in
    (* Warmup: privatize each worker's response ring and fault in its
       CoW data pages once, so steady state is measurable. *)
    Array.iter
      (fun (child, vh_w, _) ->
        Api.vas_switch child vh_w;
        for r = 0 to cfg.ring_slots - 1 do
          Api.store64 child ~va:(ring_base + (r * slot_bytes)) 0L
        done;
        Api.switch_home child)
      pool;
    steady0 := Metrics.cow_faults mets;
    for conn = 0 to cfg.connections - 1 do
      let child, vh_w, core = pool.(conn mod workers) in
      let c0 = Core.cycles core in
      Api.vas_switch child vh_w;
      setups.(conn) <- Core.cycles core - c0;
      for r = 0 to cfg.requests_per_conn - 1 do
        let t0 = Core.cycles core in
        do_request child ~req:r;
        latencies.((conn * cfg.requests_per_conn) + r) <- float_of_int (Core.cycles core - t0)
      done;
      Api.switch_home child
    done;
    (* The prefork family shares its primary spaces with the parent:
       census the first worker. *)
    (match pool.(0) with
    | child, _, _ ->
      let total, shared =
        Page_table.count_nodes
          (Sj_kernel.Vmspace.page_table (Process.primary_vmspace (Api.process child)))
      in
      share_total := total;
      share_shared := shared);
    Array.iter (fun (child, _, _) -> Api.exit_process child) pool);
  let steady_cow_faults =
    match cfg.mode with
    | Prefork _ -> Metrics.cow_faults mets - !steady0
    | Fork_per_conn -> Metrics.cow_faults mets
  in
  (* The parent's live store after every connection: under
     [Fork_per_conn] all SETs landed in discarded snapshots, so this
     must equal [checksum_before]. *)
  Api.vas_switch parent vh;
  let checksum_after = store_checksum () in
  Api.switch_home parent;
  let audit = Page_table.audit (Machine.mem machine) in
  (* Replay the measured connections against a bounded service pool in
     simulated time: arrivals are evenly spaced, each connection holds
     one pool core for its setup plus its whole batch. *)
  let eng = Engine.create () in
  let pool = Resource.Cores.create eng ~n:cfg.cores in
  let completed = ref 0 in
  for conn = 0 to cfg.connections - 1 do
    Engine.schedule eng ~at:(conn * cfg.interarrival) (fun () ->
        let batch = ref setups.(conn) in
        for r = 0 to cfg.requests_per_conn - 1 do
          batch := !batch + int_of_float latencies.((conn * cfg.requests_per_conn) + r)
        done;
        Resource.Cores.exec pool ~cycles:!batch (fun () ->
            completed := !completed + cfg.requests_per_conn))
  done;
  Engine.run eng;
  let span = max 1 (Engine.now eng) in
  let seconds = Sj_machine.Cost_model.cycles_to_seconds (Machine.cost machine) span in
  let throughput = float_of_int !completed /. seconds in
  let p50 = Stats.percentile latencies 50.0 and p99 = Stats.percentile latencies 99.0 in
  let fingerprint =
    [
      ("requests", !completed);
      ("connections", cfg.connections);
      ("span_cycles", span);
      ("p50", int_of_float p50);
      ("p99", int_of_float p99);
      ("forks", Metrics.forks mets);
      ("cow_faults", Metrics.cow_faults mets);
      ("steady_cow_faults", steady_cow_faults);
      ("cow_copies", Metrics.cow_copies mets);
      ("share_total", !share_total);
      ("share_shared", !share_shared);
      ("checksum_before", checksum_before);
      ("checksum_after", checksum_after);
      ("pt_leaked", audit.Page_table.a_leaked);
      ("pt_imbalanced", List.length audit.Page_table.a_imbalanced);
    ]
  in
  {
    requests = !completed;
    connections = cfg.connections;
    seconds;
    throughput;
    p50;
    p99;
    forks = Metrics.forks mets;
    cow_faults = Metrics.cow_faults mets;
    steady_cow_faults;
    cow_copies = Metrics.cow_copies mets;
    share_total = !share_total;
    share_shared = !share_shared;
    checksum_before;
    checksum_after;
    pt_leaked = audit.Page_table.a_leaked;
    pt_imbalanced = List.length audit.Page_table.a_imbalanced;
    fingerprint;
  }
