(** RedisJMP — Redis re-architected over SpaceJMP (§5.3).

    There is no server process. The store's data structures live in a
    lockable segment inside a named VAS; clients execute server code
    *themselves* by switching into that address space. Reads enter
    through a read-only attachment (shared lock — parallel readers);
    writes enter read-write (exclusive lock). Each client carries a
    small private scratch segment for command parsing, because even GET
    handling allocates transient objects and the shared segment is
    read-only on that path. Hash-table resizing is deferred until a
    client holds the exclusive lock.

    Locking here is the *immediate-mode* segment lock (single timeline);
    the discrete-event harness in {!Kv_sim} layers queued waiting on
    top for the multi-client throughput experiments. *)

type t
(** A named RedisJMP store in the system. *)

type client

val init :
  Sj_core.Api.ctx -> name:string -> size:int -> t
(** First-client initialization: creates the VASes (one read-write,
    one read-only view), the lockable data segment, and the store
    structures (lazy server-state construction as in §5.3). *)

val find : Sj_core.Api.ctx -> name:string -> t
(** Look up an existing store in the calling context's system (raises
    [Errors.Unknown_name]). Stores live in the system registry's
    service map, not in process-global state, so a fresh system starts
    with none and concurrent simulations are independent. *)

val connect : t -> Sj_core.Api.ctx -> ?scratch_size:int -> unit -> client
(** Attach the calling process: builds its rw and ro attachments and
    its private scratch segment. *)

val execute : client -> Resp.command -> Resp.reply
(** Run a command by jumping into the store's address space. Write
    commands take the exclusive path, read commands the shared path.
    If store memory runs out mid-write, the acting client doubles the
    shared segment under its exclusive lock and retries — no other
    client coordinates (§1, §2.3). Raises [Errors.Would_block] if the
    segment lock is unavailable. *)

val execute_retry :
  ?attempts:int ->
  ?backoff_cycles:int ->
  client ->
  Resp.command ->
  (Resp.reply, Sj_abi.Error.t) result
(** Like {!execute}, but every switch into the store goes through
    [Api.Checked.switch_retry]: on a lock conflict the client backs off
    (charged, deterministic, linear in simulated cycles) and retries up
    to [attempts] times before giving up with [Error] ([Would_block]).
    The availability harness ({!Kv_avail}) uses this so surviving
    clients ride out the window in which a crashed lock holder has not
    yet been reclaimed. *)

val execute_batch : client -> Resp.command array -> Resp.reply array
(** Run a whole pipelined burst under ONE address-space jump: a single
    switch (exclusive if the burst contains any write, shared
    otherwise), one lock admission, one event-loop wakeup
    ([batch_wakeup_overhead] = 5,000 cycles), then per-command work at
    [batch_per_command] = 1,500 cycles each — the two constants sum to
    the single-command [dispatch_overhead], so a burst of one costs
    exactly what {!execute} charges for dispatch. Replies are in
    command order. Mid-burst out-of-memory grows the segment under the
    held lock and resumes at the failing command. This is the cluster
    shard server's drain path. *)

val execute_batch_retry :
  ?attempts:int ->
  ?backoff_cycles:int ->
  client ->
  Resp.command array ->
  (Resp.reply array, Sj_abi.Error.t) result
(** {!execute_batch} with the switch going through
    [Api.Checked.switch_retry], as {!execute_retry} — how a respawned
    shard server re-enters its segment while the crashed predecessor's
    lock may not yet be reclaimed. *)

val get : client -> string -> bytes option
val set : client -> string -> bytes -> unit
val store : t -> Store.t
val data_segment : t -> Sj_core.Segment.t
val name : t -> string

val rw_vas : t -> Sj_core.Vas.t
(** The read-write VAS clients jump into — where {!Kv_sandbox} carves
    its protection-key compartments. *)

val is_write_command : Resp.command -> bool

(** {2 Keyspace notifications}

    §5.3: publish–subscribe features live in a dedicated notification
    service. With notifications enabled, every successful write command
    publishes an event on the written key's channel. *)

val enable_notifications : client -> Notify.t -> unit
val keyspace_channel : string -> string
(** The channel carrying events for one key ("keyspace:<key>"). *)
