(* Availability under faults (lib/fault meets RedisJMP).

   One writer — the victim — switches into the store's read-write VAS,
   taking the data segment's exclusive lock, and is then killed by the
   fault injector at its next syscall while still holding it. The
   surviving reader clients keep issuing requests throughout: while the
   dead holder wedges the lock they burn bounded, charged retry/backoff
   budgets ([Redisjmp.execute_retry]); once the kernel's crash teardown
   reclaims the lock they serve normally again. A late-arriving process
   then attaches to the orphaned VAS and round-trips a write, the
   paper's "address space outlives its creator" claim under the least
   graceful exit possible.

   Everything is measured in simulated cycles on the core that did the
   work, and the whole run is a deterministic function of the config
   (single timeline, seeded injector). *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Process = Sj_kernel.Process
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Error = Sj_abi.Error
module Plan = Sj_fault.Plan
module Injector = Sj_fault.Injector
module Recorder = Sj_obs.Recorder
module Metrics = Sj_obs.Metrics

type config = {
  platform : Platform.t;
  backend : Api.backend;
  clients : int;
  requests_per_client : int;  (** per phase: healthy, storm, recovered *)
  value_size : int;
  keyspace : int;
  retry_attempts : int;
  backoff_cycles : int;
  victim_work_cycles : int;
  seed : int;
}

let default_config =
  {
    platform = Platform.m1;
    backend = Api.Dragonfly;
    clients = 4;
    requests_per_client = 32;
    value_size = 16;
    keyspace = 128;
    retry_attempts = 4;
    backoff_cycles = 2_000;
    victim_work_cycles = 250_000;
    seed = 42;
  }

type result = {
  served_before : int;
  stalled_requests : int;
  stall_cycles : int;
  outage_cycles : int;
  recovery_cycles : int;
  served_after : int;
  crashes : int;
  lock_reclaims : int;
  survivors_ok : bool;
  lock_free : bool;
  orphan_served : bool;
}

let run cfg =
  let machine = Machine.create cfg.platform in
  let rec_ = Recorder.create () in
  Recorder.attach (Machine.sim_ctx machine) rec_;
  let sys = Api.boot ~backend:cfg.backend machine in
  let ncores = Platform.total_cores cfg.platform in
  (* Bootstrap: initialize and pre-populate the store. *)
  let boot_proc = Process.create ~name:"boot" machine in
  let boot_ctx = Api.context sys boot_proc (Machine.core machine 0) in
  let store = Redisjmp.init boot_ctx ~name:"redis" ~size:(Size.mib 8) in
  let boot_client = Redisjmp.connect store boot_ctx () in
  let keys = Array.init cfg.keyspace (Printf.sprintf "key:%06d") in
  let value = Bytes.make cfg.value_size 'v' in
  Array.iter (fun k -> Redisjmp.set boot_client k value) keys;
  (* Surviving clients, one process each, spread over the machine. *)
  let survivors =
    Array.init cfg.clients (fun i ->
        let proc = Process.create ~name:(Printf.sprintf "client%d" i) machine in
        let core = Machine.core machine ((i + 2) mod ncores) in
        let ctx = Api.context sys proc core in
        (Redisjmp.connect store ctx (), core, Rng.create ~seed:(cfg.seed + (31 * i) + 1)))
  in
  (* The victim works at the API level: it holds the exclusive lock
     across a window instead of for the duration of one command. *)
  let victim_proc = Process.create ~name:"victim" machine in
  let victim_core = Machine.core machine (1 mod ncores) in
  let victim_ctx = Api.context sys victim_proc victim_core in
  let victim_vh = Api.vas_attach victim_ctx (Api.vas_find victim_ctx ~name:"redis.rw") in
  let serve (client, _, rng) =
    let key = keys.(Rng.int rng cfg.keyspace) in
    Redisjmp.execute_retry ~attempts:cfg.retry_attempts
      ~backoff_cycles:cfg.backoff_cycles client (Resp.Get key)
  in
  let phase () =
    let ok = ref 0 and stalled = ref 0 and cycles = ref 0 in
    for _ = 1 to cfg.requests_per_client do
      Array.iter
        (fun ((_, core, _) as s) ->
          let t0 = Core.cycles core in
          (match serve s with Ok _ -> incr ok | Error _ -> incr stalled);
          cycles := !cycles + (Core.cycles core - t0))
        survivors
    done;
    (!ok, !stalled, !cycles)
  in
  (* Phase 1: healthy baseline. *)
  let served_before, _, _ = phase () in
  (* Phase 2: the victim takes the exclusive lock, then the injector is
     armed to kill it at its next syscall while still holding it. *)
  Api.vas_switch victim_ctx victim_vh;
  let t_wedge = Core.cycles victim_core in
  let data_sid = Segment.sid (Redisjmp.data_segment store) in
  Injector.attach (Machine.sim_ctx machine)
    (Injector.create ~seed:cfg.seed
       [ Plan.kill_holding_lock ~pid:(Process.pid victim_proc) ~sid:data_sid ]);
  (* Phase 3: the storm — the victim computes inside the space while
     every survivor request finds the lock wedged by a holder that will
     never release it, and exhausts its charged retry budget. *)
  Core.charge victim_core cfg.victim_work_cycles;
  let _, stalled_requests, stall_cycles = phase () in
  (* Phase 4: the victim's next syscall fires the kill; crash teardown
     reclaims its locks, detaches it, and recycles its cores. *)
  let t_kill = Core.cycles victim_core in
  let crashed =
    match Api.switch_home victim_ctx with
    | () -> false
    | exception Injector.Killed _ -> true
  in
  let t_reclaimed = Core.cycles victim_core in
  (* Phase 5: recovered — survivors serve normally again. *)
  let served_after, _, _ = phase () in
  (* A fresh process attaches to the orphaned VAS and round-trips a
     write through it. *)
  let late_proc = Process.create ~name:"late" machine in
  let late_ctx = Api.context sys late_proc (Machine.core machine (1 mod ncores)) in
  let late_client = Redisjmp.connect store late_ctx () in
  let marker = Bytes.make cfg.value_size 'z' in
  Redisjmp.set late_client keys.(0) marker;
  let orphan_served = Redisjmp.get late_client keys.(0) = Some marker in
  let m = Recorder.metrics rec_ in
  let want = cfg.clients * cfg.requests_per_client in
  {
    served_before;
    stalled_requests;
    stall_cycles;
    outage_cycles = t_reclaimed - t_wedge;
    recovery_cycles = t_reclaimed - t_kill;
    served_after;
    crashes = Metrics.crashes m;
    lock_reclaims = Metrics.lock_reclaims m;
    survivors_ok =
      crashed && served_before = want && served_after = want
      && not (Process.is_live victim_proc);
    lock_free = Segment.lock_state (Redisjmp.data_segment store) = Segment.Unlocked;
    orphan_served;
  }
