(** The kernel ABI: a numbered dispatch table over every SpaceJMP
    operation (paper Fig. 3 plus the runtime/persistence calls).

    The two OS personalities route the same table differently at the
    entry point — DragonFly fields each call as a syscall, Barrelfish
    as an RPC to the user-space SpaceJMP service carried by a
    capability invocation (§4.1/§4.2, Table 2) — so the table charges
    the boundary-crossing cost of the booted {!backend} in exactly one
    place, and keeps per-syscall counters (calls and simulated cycles
    per ABI number) that benches and tools can query.

    One {!t} exists per booted system ([Api.boot] creates it); nothing
    here is process-global, so concurrent simulations on separate
    domains stay independent. *)

module Core := Sj_machine.Machine.Core
module Cost_model := Sj_machine.Cost_model

type backend = Dragonfly | Barrelfish

(** ABI numbers. The variant order is the numbering — append only. *)
type nr =
  | Vas_create  (** 0 *)
  | Vas_find  (** 1 *)
  | Vas_clone  (** 2 *)
  | Vas_attach  (** 3 *)
  | Vas_detach  (** 4 *)
  | Vas_switch  (** 5 *)
  | Vas_switch_home  (** 6 *)
  | Vas_ctl  (** 7 *)
  | Vas_delete  (** 8 *)
  | Seg_alloc  (** 9 *)
  | Seg_find  (** 10 *)
  | Seg_attach  (** 11 *)
  | Seg_attach_local  (** 12 *)
  | Seg_detach  (** 13 *)
  | Seg_detach_local  (** 14 *)
  | Seg_clone  (** 15 *)
  | Seg_snapshot  (** 16 *)
  | Seg_ctl  (** 17 *)
  | Seg_delete  (** 18 *)
  | Seg_lock  (** 19 *)
  | Seg_unlock  (** 20 *)
  | Heap_malloc  (** 21 *)
  | Heap_free  (** 22 *)
  | Proc_exit  (** 23 *)
  | Persist_save  (** 24 *)
  | Persist_restore  (** 25 *)
  | Proc_crash  (** 26 — involuntary teardown of a dead process *)
  | Pkey_alloc  (** 27 — allocate a protection key in a VAS *)
  | Pkey_assign  (** 28 — tag a segment's pages with a key *)
  | Pkey_switch  (** 29 — rewrite the per-core key register (no trap) *)
  | Vas_fork  (** 30 — copy-on-write duplicate of a VAS attachment *)
  | Proc_fork  (** 31 — copy-on-write duplicate of the calling process *)

val nr_count : int
val number : nr -> int
val of_number : int -> nr option
val name : nr -> string
(** The Fig. 3 spelling, e.g. ["vas_switch"], ["seg_alloc"]. *)

val all : nr array
(** Every entry in ABI-number order. *)

(** How an entry crosses into the kernel/service, which decides the
    cost charged before the body runs. *)
type crossing =
  | Trap  (** DragonFly: one syscall. Barrelfish: RPC round trip — two
              service syscalls plus two cache-line transfers. *)
  | Lock_path  (** runtime-library fast path: one uncontended lock *)
  | Inline  (** no entry cost of its own; the body charges everything
                (e.g. [vas_switch] charges Table 2's full breakdown) *)

val crossing : nr -> crossing
val entry_cost : Cost_model.t -> backend -> nr -> int
(** Simulated cycles charged at entry for this backend. *)

type t
(** Per-system dispatch state: backend identity plus count/cycle
    counters indexed by ABI number. *)

val create : backend -> t
val backend : t -> backend

val invoke : t -> cost:Cost_model.t -> Core.core -> nr -> (unit -> 'a) -> ('a, Error.t) result
(** [invoke t ~cost core nr body] is the ABI boundary: bumps the
    call counter, charges {!entry_cost} to [core], runs [body], and
    accounts the full simulated-cycle delta of the call to [nr].
    {!Error.Fault} raised by [body] becomes [Error _]; every other
    exception (page faults, host errors) propagates unchanged. When the
    simulation's [Sj_obs] recorder is active, the call is bracketed with
    [Syscall_enter]/[Syscall_exit] events carrying the cycle delta and
    fault outcome — this one site instruments every dispatch entry. *)

val charge_entry : t -> cost:Cost_model.t -> Core.core -> nr -> unit
(** Count and charge just the entry cost — for operations embedded in
    another call's body (e.g. the per-segment lock acquisitions inside
    [vas_switch]). Emits the same enter/exit event pair as {!invoke}
    around the entry charge when tracing is on. *)

val count : t -> nr -> unit
(** Count a call without charging (entries with no core at hand, e.g.
    persistence ops, or zero-cost exits like [seg_unlock]). *)

val counters : t -> nr -> int * int
(** [(calls, simulated_cycles)] accumulated for one ABI number. *)

val snapshot : t -> (nr * int * int) list
(** Non-zero counters in ABI-number order. *)

val reset : t -> unit

val describe : t -> string
(** Multi-line "nr name calls cycles" table of the non-zero counters
    (for [sjctl] and debugging). *)
