(** The typed fault model of the SpaceJMP kernel ABI.

    Every failure that can cross the ABI boundary is one of these
    errno-style codes, carried in a {!t} together with the operation
    that failed and a human-readable detail string. Kernel- and
    core-layer code raises {!Fault}; the dispatch table ({!Sys.invoke})
    converts it into [('a, t) result] at the boundary, and the
    exception-compatible [Api] wrapper re-raises the legacy
    [Sj_core.Errors] exception for callers that still want one.

    The two OS personalities differ in how a fault travels (DragonFly:
    syscall error return; Barrelfish: RPC error reply) but not in what
    it says — the code set is backend-independent, like errno. *)

type code =
  | Permission_denied  (** ACL or capability check failed (EPERM) *)
  | Would_block  (** lockable segment busy; retry or wait (EWOULDBLOCK) *)
  | Name_exists  (** VAS/segment/service name already registered (EEXIST) *)
  | Unknown_name  (** lookup target does not exist (ENOENT) *)
  | Stale_handle  (** detached handle, destroyed or revoked object (ESTALE) *)
  | Address_conflict  (** placement collides with an existing mapping (EADDRINUSE) *)
  | Layout_exhausted  (** global address range has no room left (ELAYOUT) *)
  | Invalid  (** malformed argument or unsupported operation (EINVAL) *)
  | Capacity  (** quota/capacity: heap or reservation exhausted (ENOSPC) *)
  | Key_violation
      (** a data access was denied by the protection-key register — the
          compartment stepped outside its keys (EKEY) *)

type t = { code : code; op : string; detail : string }
(** [op] is the ABI operation name (e.g. ["vas_switch"]); [detail] says
    what specifically went wrong. *)

exception Fault of t
(** The only exception kernel/core layers raise for ABI-visible
    failures. A registered printer renders it readably in backtraces. *)

val make : code -> op:string -> string -> t
val fail : code -> op:string -> string -> 'a
(** [fail code ~op detail] raises {!Fault}. *)

val failf : code -> op:string -> ('a, unit, string, 'b) format4 -> 'a
(** [fail] with a format string for the detail. *)

val code_of : t -> code

val all_codes : code list
(** Every code, in errno order — tests iterate this to prove coverage. *)

val code_name : code -> string
(** Errno-style mnemonic, e.g. ["EPERM"], ["ELAYOUT"]. *)

val errno : code -> int
(** Stable small integer per code (1..10); part of the ABI. *)

val exit_code : code -> int
(** Distinct process exit code for CLI tools ([10 + errno]), leaving
    0..9 for tool-specific statuses. *)

val to_string : t -> string
(** One-line rendering: ["op: detail (ENAME)"]. *)

val pp : Format.formatter -> t -> unit
val pp_code : Format.formatter -> code -> unit
val equal_code : code -> code -> bool
