type code =
  | Permission_denied
  | Would_block
  | Name_exists
  | Unknown_name
  | Stale_handle
  | Address_conflict
  | Layout_exhausted
  | Invalid
  | Capacity
  | Key_violation

type t = { code : code; op : string; detail : string }

exception Fault of t

let make code ~op detail = { code; op; detail }
let fail code ~op detail = raise (Fault (make code ~op detail))
let failf code ~op fmt = Printf.ksprintf (fail code ~op) fmt
let code_of t = t.code

let all_codes =
  [
    Permission_denied; Would_block; Name_exists; Unknown_name; Stale_handle;
    Address_conflict; Layout_exhausted; Invalid; Capacity; Key_violation;
  ]

let code_name = function
  | Permission_denied -> "EPERM"
  | Would_block -> "EWOULDBLOCK"
  | Name_exists -> "EEXIST"
  | Unknown_name -> "ENOENT"
  | Stale_handle -> "ESTALE"
  | Address_conflict -> "EADDRINUSE"
  | Layout_exhausted -> "ELAYOUT"
  | Invalid -> "EINVAL"
  | Capacity -> "ENOSPC"
  | Key_violation -> "EKEY"

let errno = function
  | Permission_denied -> 1
  | Would_block -> 2
  | Name_exists -> 3
  | Unknown_name -> 4
  | Stale_handle -> 5
  | Address_conflict -> 6
  | Layout_exhausted -> 7
  | Invalid -> 8
  | Capacity -> 9
  | Key_violation -> 10

let exit_code c = 10 + errno c
let to_string t = Printf.sprintf "%s: %s (%s)" t.op t.detail (code_name t.code)
let pp fmt t = Format.pp_print_string fmt (to_string t)
let pp_code fmt c = Format.pp_print_string fmt (code_name c)
let equal_code (a : code) (b : code) = a = b

let () =
  Printexc.register_printer (function
    | Fault t -> Some ("Sj_abi.Error.Fault: " ^ to_string t)
    | _ -> None)
