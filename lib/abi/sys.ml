module Core = Sj_machine.Machine.Core
module Cost_model = Sj_machine.Cost_model

type backend = Dragonfly | Barrelfish

type nr =
  | Vas_create
  | Vas_find
  | Vas_clone
  | Vas_attach
  | Vas_detach
  | Vas_switch
  | Vas_switch_home
  | Vas_ctl
  | Vas_delete
  | Seg_alloc
  | Seg_find
  | Seg_attach
  | Seg_attach_local
  | Seg_detach
  | Seg_detach_local
  | Seg_clone
  | Seg_snapshot
  | Seg_ctl
  | Seg_delete
  | Seg_lock
  | Seg_unlock
  | Heap_malloc
  | Heap_free
  | Proc_exit
  | Persist_save
  | Persist_restore
  | Proc_crash
  | Pkey_alloc
  | Pkey_assign
  | Pkey_switch
  | Vas_fork
  | Proc_fork

let all =
  [|
    Vas_create; Vas_find; Vas_clone; Vas_attach; Vas_detach; Vas_switch;
    Vas_switch_home; Vas_ctl; Vas_delete; Seg_alloc; Seg_find; Seg_attach;
    Seg_attach_local; Seg_detach; Seg_detach_local; Seg_clone; Seg_snapshot;
    Seg_ctl; Seg_delete; Seg_lock; Seg_unlock; Heap_malloc; Heap_free;
    Proc_exit; Persist_save; Persist_restore; Proc_crash; Pkey_alloc;
    Pkey_assign; Pkey_switch; Vas_fork; Proc_fork;
  |]

let nr_count = Array.length all

let number = function
  | Vas_create -> 0
  | Vas_find -> 1
  | Vas_clone -> 2
  | Vas_attach -> 3
  | Vas_detach -> 4
  | Vas_switch -> 5
  | Vas_switch_home -> 6
  | Vas_ctl -> 7
  | Vas_delete -> 8
  | Seg_alloc -> 9
  | Seg_find -> 10
  | Seg_attach -> 11
  | Seg_attach_local -> 12
  | Seg_detach -> 13
  | Seg_detach_local -> 14
  | Seg_clone -> 15
  | Seg_snapshot -> 16
  | Seg_ctl -> 17
  | Seg_delete -> 18
  | Seg_lock -> 19
  | Seg_unlock -> 20
  | Heap_malloc -> 21
  | Heap_free -> 22
  | Proc_exit -> 23
  | Persist_save -> 24
  | Persist_restore -> 25
  | Proc_crash -> 26
  | Pkey_alloc -> 27
  | Pkey_assign -> 28
  | Pkey_switch -> 29
  | Vas_fork -> 30
  | Proc_fork -> 31

let of_number n = if n >= 0 && n < nr_count then Some all.(n) else None

let name = function
  | Vas_create -> "vas_create"
  | Vas_find -> "vas_find"
  | Vas_clone -> "vas_clone"
  | Vas_attach -> "vas_attach"
  | Vas_detach -> "vas_detach"
  | Vas_switch -> "vas_switch"
  | Vas_switch_home -> "vas_switch_home"
  | Vas_ctl -> "vas_ctl"
  | Vas_delete -> "vas_delete"
  | Seg_alloc -> "seg_alloc"
  | Seg_find -> "seg_find"
  | Seg_attach -> "seg_attach"
  | Seg_attach_local -> "seg_attach_local"
  | Seg_detach -> "seg_detach"
  | Seg_detach_local -> "seg_detach_local"
  | Seg_clone -> "seg_clone"
  | Seg_snapshot -> "seg_snapshot"
  | Seg_ctl -> "seg_ctl"
  | Seg_delete -> "seg_delete"
  | Seg_lock -> "seg_lock"
  | Seg_unlock -> "seg_unlock"
  | Heap_malloc -> "malloc"
  | Heap_free -> "free"
  | Proc_exit -> "proc_exit"
  | Persist_save -> "persist_save"
  | Persist_restore -> "persist_restore"
  | Proc_crash -> "proc_crash"
  | Pkey_alloc -> "pkey_alloc"
  | Pkey_assign -> "pkey_assign"
  | Pkey_switch -> "pkey_switch"
  | Vas_fork -> "vas_fork"
  | Proc_fork -> "proc_fork"

type crossing = Trap | Lock_path | Inline

let crossing = function
  | Vas_create | Vas_find | Vas_clone | Vas_attach | Vas_detach | Vas_ctl
  | Vas_delete | Seg_alloc | Seg_find | Seg_attach | Seg_attach_local
  | Seg_detach | Seg_detach_local | Seg_clone | Seg_snapshot | Seg_ctl
  | Seg_delete | Pkey_alloc | Pkey_assign | Vas_fork | Proc_fork ->
    Trap
  | Seg_lock | Heap_malloc | Heap_free -> Lock_path
  (* Pkey_switch is the point of the mechanism: a pure user-space
     register write, no kernel entry. Its WRPKRU cost is charged by the
     crossing layer (Api), like vas_switch's CR3 cost. *)
  | Vas_switch | Vas_switch_home | Seg_unlock | Proc_exit | Persist_save
  | Persist_restore | Proc_crash | Pkey_switch ->
    Inline

(* DragonFly fields a call as one kernel syscall; Barrelfish as an RPC
   round trip to the user-space service — a syscall each way plus a
   cache-line handoff each way (§4.2). *)
let entry_cost (c : Cost_model.t) backend nr =
  match (crossing nr, backend) with
  | Inline, _ -> 0
  | Lock_path, _ -> c.lock_uncontended
  | Trap, Dragonfly -> c.syscall_dragonfly
  | Trap, Barrelfish -> (2 * c.syscall_barrelfish) + (2 * c.cacheline_intra)

type t = { backend : backend; counts : int array; cycles : int array }

let create backend =
  { backend; counts = Array.make nr_count 0; cycles = Array.make nr_count 0 }

let backend t = t.backend

let count t nr =
  let i = number nr in
  t.counts.(i) <- t.counts.(i) + 1

(* Observability: every dispatched entry brackets itself with
   Syscall_enter/Syscall_exit events (test/lint_obs.sh holds this
   invariant). The recorder guard keeps the disabled path allocation-
   free: no event record exists unless tracing is on. *)
module Recorder = Sj_obs.Recorder

let emit_enter core nr =
  match Recorder.active (Core.sim_ctx core) with
  | Some r ->
    Recorder.emit r ~core:(Core.id core) ~cycles:(Core.cycles core)
      (Sj_obs.Event.Syscall_enter { nr = number nr; sname = name nr })
  | None -> ()

let emit_exit core nr ~c0 ~ok =
  match Recorder.active (Core.sim_ctx core) with
  | Some r ->
    let now = Core.cycles core in
    Recorder.emit r ~core:(Core.id core) ~cycles:now
      (Sj_obs.Event.Syscall_exit
         { nr = number nr; sname = name nr; cycles = now - c0; ok })
  | None -> ()

let charge_entry t ~cost core nr =
  let i = number nr in
  t.counts.(i) <- t.counts.(i) + 1;
  let c0 = Core.cycles core in
  emit_enter core nr;
  (match entry_cost cost t.backend nr with
  | 0 -> ()
  | e ->
    Core.charge core e;
    t.cycles.(i) <- t.cycles.(i) + e);
  emit_exit core nr ~c0 ~ok:true

let invoke t ~cost core nr body =
  let i = number nr in
  t.counts.(i) <- t.counts.(i) + 1;
  let c0 = Core.cycles core in
  emit_enter core nr;
  (match entry_cost cost t.backend nr with 0 -> () | e -> Core.charge core e);
  let finish ok =
    t.cycles.(i) <- t.cycles.(i) + (Core.cycles core - c0);
    emit_exit core nr ~c0 ~ok
  in
  match body () with
  | v ->
    finish true;
    Ok v
  | exception Error.Fault f ->
    finish false;
    Error f
  | exception e ->
    finish false;
    raise e

let counters t nr =
  let i = number nr in
  (t.counts.(i), t.cycles.(i))

let snapshot t =
  Array.to_list all
  |> List.filter_map (fun nr ->
         let calls, cyc = counters t nr in
         if calls = 0 && cyc = 0 then None else Some (nr, calls, cyc))

let reset t =
  Array.fill t.counts 0 nr_count 0;
  Array.fill t.cycles 0 nr_count 0

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "syscalls (%s backend):\n"
       (match t.backend with Dragonfly -> "DragonFly" | Barrelfish -> "Barrelfish"));
  Buffer.add_string buf (Printf.sprintf "  %3s %-18s %10s %14s\n" "nr" "name" "calls" "cycles");
  List.iter
    (fun (nr, calls, cyc) ->
      Buffer.add_string buf
        (Printf.sprintf "  %3d %-18s %10d %14d\n" (number nr) (name nr) calls cyc))
    (snapshot t);
  Buffer.contents buf
