(* The `bench explore` / `sjctl explore` driver: enumerates the sweep,
   runs every config (optionally across a domain pool), checks every
   invariant after every run, replays each violating config from its
   [(backend, seed, plan)] key, evaluates the acceptance claims, and
   runs the usual determinism audit battery. Shared by
   bench/explorebench.ml and bin/sjctl.ml so the two front-ends cannot
   drift.

   Two failure channels, both fatal to the front-ends (exit 2, no
   report written):
   - [divergences]: a fingerprint changed under a host-side condition
     that must not leak into simulated results (rerun, tracing on,
     empty ambient fault plan, inside a domain pool), or a violating
     config whose replay was not byte-identical;
   - [failed_claims]: the sweep fell below the acceptance floor
     (distinct configs, plan-kind / backend / mechanism coverage) or
     fewer than six invariants are being checked. *)

module Par = Sj_util.Par
module Plan = Sj_fault.Plan

type outcome = {
  report : Explore_report.t;
  divergences : string list;
  failed_claims : string list;
}

let kind_of_fault = function
  | Plan.Kill_at_syscall _ -> "kill_at_syscall"
  | Plan.Kill_holding_lock _ -> "kill_holding_lock"
  | Plan.Would_block_storm _ -> "would_block_storm"
  | Plan.Grow_fail _ -> "grow_fail"
  | Plan.Torn_write _ -> "torn_write"

let all_kinds =
  [ "kill_at_syscall"; "kill_holding_lock"; "would_block_storm"; "grow_fail"; "torn_write" ]

let run ~quick ~jobs ?(progress = fun _ -> ()) () =
  let cfgs = Explore.enumerate ~quick in
  let distinct = List.length (List.sort_uniq compare (List.map Explore.key cfgs)) in
  progress
    (Printf.sprintf "sweep: %d configs (%d distinct) over fault plan x schedule x backend"
       (List.length cfgs) distinct);
  let results =
    if jobs <= 1 then List.map Explore.run cfgs
    else
      (* Each config simulates its own machine, so fanning configs
         across domains changes only the wall clock. *)
      Par.with_pool ~size:jobs (fun pool -> Par.map_list pool Explore.run cfgs)
  in
  let violating = List.filter (fun (r : Explore.result) -> r.violations <> []) results in
  progress
    (Printf.sprintf "invariants: %d checked per run; %d violating run(s)"
       (List.length Invariant.all) (List.length violating));
  let divergences = ref [] in
  let diverge name = divergences := name :: !divergences in
  (* Replay every violating config from its key alone; a violation that
     does not reproduce byte-identically is itself a finding (of
     nondeterminism) and fatal. *)
  if violating <> [] then
    progress (Printf.sprintf "replay: %d violating config(s) from (backend, seed, plan)"
        (List.length violating));
  let details =
    List.concat_map
      (fun (r : Explore.result) ->
        let again = Explore.run r.cfg in
        let reproduced = Explore.equal_result r again in
        if not reproduced then diverge ("replay:" ^ Explore.key r.cfg);
        List.map
          (fun (invariant, message) ->
            {
              Explore_report.backend = Explore.backend_name r.cfg.Explore.backend;
              seed = r.cfg.Explore.seed;
              plan = Plan.to_string r.cfg.Explore.plan;
              invariant;
              message;
              reproduced;
            })
          r.violations)
      violating
  in
  progress "determinism audits";
  (* Audit a composed-plan config (all the injector machinery lit up at
     once) under every host condition, plus a replay sample of the
     sweep's head so replay fidelity is exercised even on a clean run. *)
  let acfg =
    match List.find_opt (fun (c : Explore.config) -> List.length c.Explore.plan >= 2) cfgs with
    | Some c -> c
    | None -> List.hd cfgs
  in
  let reference = Explore.run acfg in
  let audit name r = if not (Explore.equal_result reference r) then diverge name in
  audit "rerun" (Explore.run acfg);
  audit "trace-on" (Sj_obs.Recorder.with_tracing true (fun () -> Explore.run acfg));
  audit "empty-fault-plan" (Sj_fault.Injector.with_plan [] (fun () -> Explore.run acfg));
  Par.with_pool ~size:(max 2 jobs) (fun pool ->
      List.iter (fun r -> audit "domains" r) (Par.map_list pool Explore.run [ acfg; acfg ]));
  let sample = List.filteri (fun i _ -> i < 3) cfgs in
  List.iter2
    (fun cfg r0 ->
      if not (Explore.equal_result r0 (Explore.run cfg)) then
        diverge ("replay-sample:" ^ Explore.key cfg))
    sample
    (List.filteri (fun i _ -> i < 3) results);
  (* Acceptance claims. *)
  let failed = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failed := s :: !failed) fmt in
  let kinds =
    List.sort_uniq compare (List.concat_map (fun c -> List.map kind_of_fault c.Explore.plan) cfgs)
  in
  let backends =
    List.sort_uniq compare (List.map (fun c -> Explore.backend_name c.Explore.backend) cfgs)
  in
  let mechanisms = List.sort_uniq compare (List.map Explore.mechanism_name cfgs) in
  if distinct < 100 then fail "enumeration: only %d distinct configs (floor 100)" distinct;
  List.iter
    (fun k -> if not (List.mem k kinds) then fail "enumeration: plan kind %s never swept" k)
    all_kinds;
  if List.length backends < 2 then fail "enumeration: only one backend swept";
  if List.length mechanisms < 3 then
    fail "enumeration: mechanism coverage incomplete (%s)" (String.concat "," mechanisms);
  if List.length Invariant.all < 6 then
    fail "invariants: only %d checked (floor 6)" (List.length Invariant.all);
  let failed_claims = List.rev !failed in
  let divergences = List.rev !divergences in
  let report =
    {
      Explore_report.quick;
      jobs;
      cores = Domain.recommended_domain_count ();
      ocaml_version = Sys.ocaml_version;
      configs_run = List.length cfgs;
      distinct_configs = distinct;
      fuzz_configs = List.length (List.filter (fun c -> c.Explore.seed >= 1000) cfgs);
      backends;
      plan_kinds = kinds;
      mechanisms;
      invariants = List.map (fun (i : Invariant.t) -> (i.Invariant.name, i.Invariant.doc)) Invariant.all;
      violations = List.length details;
      details;
      enumeration_ok =
        not (List.exists (fun s -> String.length s >= 11 && String.sub s 0 11 = "enumeration") failed_claims);
      invariants_ok = List.length Invariant.all >= 6;
      replay_ok = not (List.exists (fun (d : Explore_report.detail) -> not d.reproduced) details);
      determinism_ok = divergences = [];
      audits = [ "rerun"; "trace-on"; "empty-fault-plan"; "domains"; "replay-sample" ];
    }
  in
  { report; divergences; failed_claims }
