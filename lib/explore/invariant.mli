(** Global invariants the explorer asserts after every run.

    Each invariant is a pure function over a {!World.t}; it returns one
    human-readable message per violation (empty list = holds). Because
    the checks never touch live simulator state, the test suite can
    hand them deliberately broken worlds built by plain record
    construction — no test-only hooks in the simulator.

    The crop checked after every exploration run:
    - [lock-balance] — no segment lock survives its holders; acquire /
      release / reclaim counters balance once teardown completes.
    - [tag-unique] — a TLB tag is never live in two VASes at once, the
      free list holds no duplicates, and no live tag sits on it.
    - [tag-reclaim] — after full teardown every tag ever issued is back
      on the free list.
    - [pkey-owners] — protection keys are in range, allocated at most
      once per VAS, owned only by live processes, and every tagged
      segment references an allocated key.
    - [pkru-hygiene] — a live core whose key-permission register is not
      the default must be switched into a VAS, and every key it still
      holds rights to must be allocated in that VAS.
    - [refcount-balance] — every live page-table node's refcount equals
      its recomputed indegree, none is unreachable from a root or
      handle, and a complete teardown frees them all.
    - [cow-isolation] — every CoW probe a fork-bearing workload records
      observed its expected value: no write crosses a fork in either
      direction.
    - [journal-commit] — journal recovery never lands on an
      uncommitted image, and always finds one when committed entries
      exist.
    - [syscall-balance] — the observability event stream and the
      syscall table agree on per-entry calls and cycles (count-only
      entries may legitimately exceed the event count).
    - [modal-agreement] — the static analysis and the IR interpreter
      agree on [assert_valid] modal claims: both accept the clean probe
      and both flag the broken one. *)

type t = {
  name : string;
  doc : string;
  check : World.t -> string list;
}

val all : t list
(** The ten invariants above, in documentation order. *)

val names : string list

val check_all : World.t -> (string * string) list
(** Run every invariant; each violation is [(invariant name, message)]. *)

(** {2 Modal probes}

    Exposed so the invariant's own test can swap in a broken probe. *)

val modal_probe_clean : Sj_checker.Ir.program
(** Asserts a pointer in the VAS it was allocated in (and a
    common-region pointer anywhere) — both checker legs must accept. *)

val modal_probe_broken : Sj_checker.Ir.program
(** Asserts a v1 pointer valid-in-v2 — both legs must flag it. *)

val check_modal : clean:Sj_checker.Ir.program -> broken:Sj_checker.Ir.program -> string list
(** The [modal-agreement] body over explicit probes. *)
