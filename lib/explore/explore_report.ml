(* BENCH_explore.json, schema "spacejmp-bench/6-explore".

   The exploration report: host block, the sweep's shape (how many
   configs, how many distinct, which backends / plan kinds / mechanisms,
   how many fuzzed past the grid), the invariant roster, every violation
   with its replay key [(backend, seed, plan)] and whether replaying
   that key reproduced it byte-identically, the acceptance claims, and
   the determinism audits. Same discipline as the other spacejmp-bench
   reports: a report recording a divergence or a failed claim is refused
   by the checker, and the front-ends exit 2 before writing one. The
   plain "violations" count is the line CI greps for zero. *)

type detail = {
  backend : string;
  seed : int;
  plan : string;
  invariant : string;
  message : string;
  reproduced : bool;
}

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  configs_run : int;
  distinct_configs : int;
  fuzz_configs : int;
  backends : string list;
  plan_kinds : string list;
  mechanisms : string list;
  invariants : (string * string) list;  (* name, one-line doc *)
  violations : int;
  details : detail list;
  enumeration_ok : bool;
  invariants_ok : bool;
  replay_ok : bool;
  determinism_ok : bool;
  audits : string list;
}

let schema = "spacejmp-bench/6-explore"

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json r =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let str_list l = String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (escape s)) l) in
  add "{\n";
  add "  \"schema\": \"%s\",\n" schema;
  add "  \"mode\": \"%s\",\n" (if r.quick then "quick" else "full");
  add "  \"host\": {\n";
  add "    \"cores\": %d,\n" r.cores;
  add "    \"ocaml_version\": \"%s\",\n" r.ocaml_version;
  add "    \"jobs\": %d\n" r.jobs;
  add "  },\n";
  add "  \"sweep\": {\n";
  add "    \"configs_run\": %d,\n" r.configs_run;
  add "    \"distinct_configs\": %d,\n" r.distinct_configs;
  add "    \"fuzz_configs\": %d,\n" r.fuzz_configs;
  add "    \"backends\": [%s],\n" (str_list r.backends);
  add "    \"plan_kinds\": [%s],\n" (str_list r.plan_kinds);
  add "    \"mechanisms\": [%s]\n" (str_list r.mechanisms);
  add "  },\n";
  add "  \"invariants\": [\n";
  List.iteri
    (fun i (name, doc) ->
      add "    {\"name\": \"%s\", \"doc\": \"%s\"}%s\n" (escape name) (escape doc)
        (if i = List.length r.invariants - 1 then "" else ","))
    r.invariants;
  add "  ],\n";
  add "  \"violations\": %d,\n" r.violations;
  add "  \"violation_details\": [%s\n" (if r.details = [] then "]," else "");
  if r.details <> [] then begin
    List.iteri
      (fun i d ->
        add "    {\"backend\": \"%s\", \"seed\": %d, \"plan\": \"%s\", " (escape d.backend) d.seed
          (escape d.plan);
        add "\"invariant\": \"%s\", \"message\": \"%s\", \"reproduced\": %b}%s\n"
          (escape d.invariant) (escape d.message) d.reproduced
          (if i = List.length r.details - 1 then "" else ","))
      r.details;
    add "  ],\n"
  end;
  add "  \"claims\": {\n";
  add "    \"enumeration_ok\": %b,\n" r.enumeration_ok;
  add "    \"invariants_ok\": %b,\n" r.invariants_ok;
  add "    \"replay_ok\": %b\n" r.replay_ok;
  add "  },\n";
  add "  \"determinism\": {\n";
  add "    \"audits\": [%s],\n" (str_list r.audits);
  add "    \"equal\": %b\n" r.determinism_ok;
  add "  }\n}\n";
  Buffer.contents b

(* Same validation discipline as the other report checkers: no JSON
   library in the tree, so check nesting balance outside strings,
   required keys, and refuse any recorded divergence or failed claim.
   A nonzero violation count is deliberately NOT refused here — a
   report faithfully recording reproduced violations is valid (CI
   separately greps for zero). *)
let check_string s =
  let depth = ref 0 and in_str = ref false and ok = ref true in
  String.iteri
    (fun i ch ->
      if !in_str then begin
        if ch = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  if !depth <> 0 || !in_str then ok := false;
  let required =
    [
      Printf.sprintf "\"schema\": \"%s\"" schema;
      "\"host\"";
      "\"cores\"";
      "\"ocaml_version\"";
      "\"jobs\"";
      "\"sweep\"";
      "\"configs_run\"";
      "\"distinct_configs\"";
      "\"fuzz_configs\"";
      "\"backends\"";
      "\"plan_kinds\"";
      "\"mechanisms\"";
      "\"invariants\"";
      "\"violations\"";
      "\"violation_details\"";
      "\"claims\"";
      "\"enumeration_ok\"";
      "\"invariants_ok\"";
      "\"replay_ok\"";
      "\"determinism\"";
      "\"audits\"";
    ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let errors = ref [] in
  List.iter
    (fun key ->
      if not (contains key) then
        errors := Printf.sprintf "missing key %s" key :: !errors)
    required;
  if contains "\"equal\": false" then
    errors := "report records a determinism divergence" :: !errors;
  if contains "\"enumeration_ok\": false" then
    errors := "sweep enumeration below the acceptance floor" :: !errors;
  if contains "\"invariants_ok\": false" then
    errors := "fewer invariants checked than the acceptance floor" :: !errors;
  if contains "\"replay_ok\": false" then
    errors := "a violation did not replay byte-identically from its key" :: !errors;
  if contains "\"reproduced\": false" then
    errors := "a recorded violation is marked unreproduced" :: !errors;
  if not !ok then errors := "unbalanced JSON nesting" :: !errors;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  check_string s
