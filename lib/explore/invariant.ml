module Pkey = Sj_paging.Pkey
open Sj_checker

type t = {
  name : string;
  doc : string;
  check : World.t -> string list;
}

let sp = Printf.sprintf

let dup_of list =
  let rec go = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else go rest
  in
  go list

let each_system w f =
  List.concat_map
    (fun (ph : World.phase_snap) ->
      List.concat_map (fun sys -> f ph.World.phase sys) ph.World.systems)
    w.World.snapshots

(* -- lock-balance ----------------------------------------------------- *)

let lock_balance w =
  let orphans =
    each_system w (fun phase (s : World.sys_snap) ->
        if s.live_pids <> [] then []
        else
          List.filter_map
            (fun (g : World.seg_snap) ->
              match g.lock with
              | World.Unlocked -> None
              | World.Shared n ->
                Some
                  (sp "phase %s/%s: segment %s (sid %d) still shared(%d) with no live process"
                     phase s.sys_id g.seg_name g.sid n)
              | World.Exclusive ->
                Some
                  (sp "phase %s/%s: segment %s (sid %d) still exclusive with no live process"
                     phase s.sys_id g.seg_name g.sid))
            s.segs)
  in
  let balance =
    if not w.World.teardown_complete then []
    else begin
      let c = w.World.counters in
      if c.lock_acquires <> c.lock_releases + c.lock_reclaims then
        [
          sp "lock counters unbalanced after teardown: %d acquired, %d released + %d reclaimed"
            c.lock_acquires c.lock_releases c.lock_reclaims;
        ]
      else []
    end
  in
  orphans @ balance

(* -- tag-unique ------------------------------------------------------- *)

let tag_unique w =
  each_system w (fun phase (s : World.sys_snap) ->
      let live = List.filter_map (fun (v : World.vas_snap) -> v.vtag) s.vases in
      let dup_live =
        match dup_of live with
        | Some g -> [ sp "phase %s/%s: TLB tag %d live in two VASes" phase s.sys_id g ]
        | None -> []
      in
      let dup_free =
        match dup_of s.free_tags with
        | Some g -> [ sp "phase %s/%s: TLB tag %d on the free list twice" phase s.sys_id g ]
        | None -> []
      in
      let both =
        List.filter_map
          (fun g ->
            if List.mem g s.free_tags then
              Some (sp "phase %s/%s: TLB tag %d both live and free" phase s.sys_id g)
            else None)
          live
      in
      dup_live @ dup_free @ both)

(* -- tag-reclaim ------------------------------------------------------ *)

let tag_reclaim w =
  if not w.World.teardown_complete then []
  else
    match World.final_main w with
    | None -> []
    | Some final ->
      let issued =
        each_system w (fun _ s ->
            if s.World.sys_id <> "main" then []
            else List.filter_map (fun (v : World.vas_snap) -> v.vtag) s.vases)
        |> List.sort_uniq compare
      in
      List.filter_map
        (fun g ->
          let still_live =
            List.exists (fun (v : World.vas_snap) -> v.vtag = Some g) final.World.vases
          in
          if still_live || List.mem g final.World.free_tags then None
          else Some (sp "TLB tag %d issued during the run never returned to the free list" g))
        issued

(* -- pkey-owners ------------------------------------------------------ *)

let pkey_owners w =
  each_system w (fun phase (s : World.sys_snap) ->
      List.concat_map
        (fun (v : World.vas_snap) ->
          let where = sp "phase %s/%s: VAS %s" phase s.sys_id v.vas_name in
          let range =
            List.filter_map
              (fun (k, _) ->
                if k >= 1 && k <= Pkey.max_key then None
                else Some (sp "%s: protection key %d out of range" where k))
              v.keys
          in
          let dup =
            match dup_of (List.map fst v.keys) with
            | Some k -> [ sp "%s: protection key %d allocated twice" where k ]
            | None -> []
          in
          let owners =
            List.filter_map
              (fun (k, pid) ->
                if List.mem pid s.live_pids then None
                else Some (sp "%s: key %d owned by dead pid %d" where k pid))
              v.keys
          in
          let segs =
            List.filter_map
              (fun (sid, k) ->
                if k = 0 || List.mem_assoc k v.keys then None
                else Some (sp "%s: segment %d tagged with unallocated key %d" where sid k))
              v.seg_keys
          in
          range @ dup @ owners @ segs)
        s.vases)

(* -- pkru-hygiene ----------------------------------------------------- *)

let pkru_hygiene w =
  each_system w (fun phase (s : World.sys_snap) ->
      List.concat_map
        (fun (c : World.core_snap) ->
          if (not c.live) || c.pkru = Pkey.default then []
          else
            let where = sp "phase %s/%s: core %d (pid %d)" phase s.sys_id c.core_id c.pid in
            match c.cur_vid with
            | None ->
              [ sp "%s: restricted pkru %#x outside any VAS" where c.pkru ]
            | Some vid -> (
              match List.find_opt (fun (v : World.vas_snap) -> v.vid = vid) s.vases with
              | None -> [ sp "%s: switched into unknown VAS %d" where vid ]
              | Some v ->
                List.filter_map
                  (fun k ->
                    if
                      Pkey.allows c.pkru ~key:k ~write:false
                      && not (List.mem_assoc k v.keys)
                    then
                      Some
                        (sp "%s: pkru %#x retains rights to key %d, not allocated in VAS %s"
                           where c.pkru k v.vas_name)
                    else None)
                  (List.init Pkey.max_key (fun i -> i + 1))))
        s.cores)

(* -- refcount-balance ------------------------------------------------- *)

let refcount_balance w =
  let a = w.World.pt in
  let imbalance =
    if a.World.pt_imbalanced <> 0 then
      [
        sp "%d page-table node(s) whose refcount differs from the recomputed indegree"
          a.World.pt_imbalanced;
      ]
    else []
  in
  let leaks =
    if a.World.pt_leaked <> 0 then
      [ sp "%d live page-table node(s) unreachable from any root or handle" a.World.pt_leaked ]
    else []
  in
  let drained =
    (* After a complete teardown every process and VAS is gone, so every
       page-table node must have been freed back to the arena. *)
    if w.World.teardown_complete && a.World.pt_nodes <> 0 && a.World.pt_imbalanced = 0
       && a.World.pt_leaked = 0
    then [ sp "%d page-table node(s) still live after a complete teardown" a.World.pt_nodes ]
    else []
  in
  imbalance @ leaks @ drained

(* -- cow-isolation ---------------------------------------------------- *)

let cow_isolation w =
  List.filter_map
    (fun (name, expected, observed) ->
      if Int64.equal expected observed then None
      else
        Some
          (sp "cow probe %s: expected %#Lx, observed %#Lx (a write crossed the fork)" name
             expected observed))
    w.World.cow_probes

(* -- journal-commit --------------------------------------------------- *)

let journal_commit w =
  match w.World.journal with
  | None -> []
  | Some j -> (
    match j.World.recovered with
    | Some false -> [ "journal recovery landed on an uncommitted image" ]
    | Some true -> []
    | None ->
      if j.World.committed_appends > 0 then
        [
          sp "journal held %d committed entr%s but recovery found none" j.World.committed_appends
            (if j.World.committed_appends = 1 then "y" else "ies");
        ]
      else [])

(* -- syscall-balance -------------------------------------------------- *)

(* ABI entries charged via [Sys.count] (no event emitted): seg_unlock,
   persist_save, persist_restore, and the injector's proc_crash
   accounting. The event stream may legitimately undercount those. *)
let count_only = [ 20; 24; 25; 26 ]

let syscall_balance w =
  List.concat_map
    (fun (r : World.row) ->
      let cyc =
        if r.obs_cycles <> r.tab_cycles then
          [
            sp "nr %d (%s): event stream saw %d cycles, syscall table %d" r.nr r.nr_name
              r.obs_cycles r.tab_cycles;
          ]
        else []
      in
      let calls =
        if List.mem r.nr count_only then
          if r.obs_calls > r.tab_calls then
            [
              sp "nr %d (%s): event stream saw %d calls, syscall table only %d" r.nr r.nr_name
                r.obs_calls r.tab_calls;
            ]
          else []
        else if r.obs_calls <> r.tab_calls then
          [
            sp "nr %d (%s): event stream saw %d calls, syscall table %d" r.nr r.nr_name r.obs_calls
              r.tab_calls;
          ]
        else []
      in
      cyc @ calls)
    w.World.counters.World.rows

(* -- modal-agreement -------------------------------------------------- *)

let block label instrs term = { Ir.label; instrs; term }
let func fname blocks = { Ir.fname; params = []; blocks }

let modal_probe_clean =
  {
    Ir.funcs =
      [
        func "main"
          [
            block "entry"
              [
                Ir.Switch "v1";
                Ir.Malloc "p";
                Ir.Assert_valid ("p", "v1");
                Ir.Alloca "s";
                Ir.Assert_valid ("s", "v1");
              ]
              (Ir.Ret None);
          ];
      ];
  }

let modal_probe_broken =
  {
    Ir.funcs =
      [
        func "main"
          [
            block "entry"
              [ Ir.Switch "v1"; Ir.Malloc "p"; Ir.Switch "v2"; Ir.Assert_valid ("p", "v2") ]
              (Ir.Ret None);
          ];
      ];
  }

let check_modal ~clean ~broken =
  let clean_violations = Modal.check clean in
  let spurious =
    List.map
      (fun v -> sp "clean probe flagged: %s" (Modal.to_string v))
      clean_violations
  in
  let broken_violations = Modal.check broken in
  let has src = List.exists (fun (v : Modal.violation) -> v.Modal.source = src) broken_violations in
  let missing =
    (if has Modal.Static then []
     else [ "static analysis accepted the broken modal probe" ])
    @
    if has Modal.Runtime then []
    else [ "interpreter accepted the broken modal probe" ]
  in
  spurious @ missing

let modal_agreement _w = check_modal ~clean:modal_probe_clean ~broken:modal_probe_broken

(* -- the crop --------------------------------------------------------- *)

let all =
  [
    {
      name = "lock-balance";
      doc = "no orphaned segment locks; acquire/release/reclaim counters balance";
      check = lock_balance;
    };
    {
      name = "tag-unique";
      doc = "TLB tags never double-issued; free list duplicate-free and disjoint from live tags";
      check = tag_unique;
    };
    {
      name = "tag-reclaim";
      doc = "every tag issued during the run returns to the free list after teardown";
      check = tag_reclaim;
    };
    {
      name = "pkey-owners";
      doc = "protection keys in range, singly allocated, owned by live pids, referenced keys allocated";
      check = pkey_owners;
    };
    {
      name = "pkru-hygiene";
      doc = "no live core retains key rights outside a VAS or to keys not allocated there";
      check = pkru_hygiene;
    };
    {
      name = "refcount-balance";
      doc = "page-table refcounts equal recomputed indegree; no unreachable or post-teardown nodes";
      check = refcount_balance;
    };
    {
      name = "cow-isolation";
      doc = "post-fork writes stay private: every CoW probe observes its expected value";
      check = cow_isolation;
    };
    {
      name = "journal-commit";
      doc = "journal recovery always lands on a committed image when one exists";
      check = journal_commit;
    };
    {
      name = "syscall-balance";
      doc = "event stream and syscall table agree per ABI entry on calls and cycles";
      check = syscall_balance;
    };
    {
      name = "modal-agreement";
      doc = "static analysis and interpreter agree on assert_valid modal claims";
      check = modal_agreement;
    };
  ]

let names = List.map (fun i -> i.name) all

let check_all w =
  List.concat_map (fun i -> List.map (fun msg -> (i.name, msg)) (i.check w)) all
