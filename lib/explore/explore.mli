(** The exploration harness: small-scope model checking over fault
    plans × schedules × backends (ISSUE 9 tentpole).

    A {!config} is one point of the sweep: a backend, a seed (whose
    parity selects the hot-loop mechanism — even exercises the full
    VAS switch / capability invocation path, odd the protection-key
    compartment path), a {!Sj_fault.Plan.t} of faults to inject, and a
    [fork] flag. {!run} executes a fixed two-process workload under the
    config — setup, mechanism hot loop, for fork-bearing configs a μFork
    phase (a CoW process fork plus a CoW VAS snapshot, with isolation
    probes recorded for the cow-isolation invariant), a compartment
    window, persist + journal recovery, restore into a second system,
    full teardown — snapshots the {!World} after every phase, audits
    page-table refcounts, and checks every {!Invariant}.

    Determinism contract: a run is a pure function of its config. The
    {!result.fingerprint} folds the event trace, metrics, syscall
    tables, registry state and fired plan into one CRC, so any
    violation replays byte-identically from [(seed, plan, backend)]
    alone. *)

module Plan = Sj_fault.Plan

type mechanism = Switch | Pkey_loop

type config = {
  backend : Sj_core.Api.backend;
  seed : int;  (** injector seed; parity selects the {!mechanism} *)
  plan : Plan.t;
  fork : bool;  (** run the μFork phase (proc_fork + vas_fork + probes) *)
}

val mechanism : config -> mechanism
val mechanism_name : config -> string
(** ["vas_reload"] (DragonFly switch), ["cap_invoke"] (Barrelfish
    switch) or ["pkey"]. *)

val backend_name : Sj_core.Api.backend -> string
val key : config -> string
(** The replay key: backend, seed and plan — everything {!run} needs. *)

type result = {
  cfg : config;
  fingerprint : int;  (** CRC-32 over the run's full observable output *)
  fired : string;  (** [Plan.to_string] of the faults that actually fired *)
  notes : string list;  (** guarded-step outcomes, chronological *)
  violations : (string * string) list;  (** (invariant, message) *)
  world : World.t;
}

val run : config -> result

val equal_result : result -> result -> bool
(** Fingerprint, fired plan and violations all agree. *)

val enumerate : quick:bool -> config list
(** The sweep: per backend — kills of pid 1 at every ABI entry
    (including the fork syscalls), kills of pid 2 at a hot subset,
    kill-holding-lock × both pids × both mechanisms, would-block
    storms, grow failures, torn writes, composed plans, fault-free
    baselines, and a fork-bearing block (fork baselines on both
    mechanisms, kills of pid 1 at the fork entries, kills and storms
    aimed at the forked child pid 3, a fork composed with a torn
    write) — then seeded LCG fuzz beyond the grid (16 configs quick,
    64 full). All configs are distinct; both mechanisms and all five
    plan kinds appear. *)
