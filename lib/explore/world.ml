module Machine = Sj_machine.Machine
module Core = Machine.Core
module Process = Sj_kernel.Process
module Sys = Sj_abi.Sys
module Api = Sj_core.Api
module Vas = Sj_core.Vas
module Segment = Sj_core.Segment
module Registry = Sj_core.Registry
module Metrics = Sj_obs.Metrics

type lock = Unlocked | Shared of int | Exclusive

type seg_snap = { seg_name : string; sid : int; lock : lock }

type vas_snap = {
  vas_name : string;
  vid : int;
  vtag : int option;
  keys : (int * int) list;
  seg_keys : (int * int) list;
}

type core_snap = {
  core_id : int;
  pid : int;
  live : bool;
  cur_vid : int option;
  pkru : int;
}

type sys_snap = {
  sys_id : string;
  segs : seg_snap list;
  vases : vas_snap list;
  free_tags : int list;
  cores : core_snap list;
  live_pids : int list;
}

type phase_snap = { phase : string; systems : sys_snap list }

type row = {
  nr : int;
  nr_name : string;
  obs_calls : int;
  obs_cycles : int;
  tab_calls : int;
  tab_cycles : int;
}

type counters = {
  lock_acquires : int;
  lock_releases : int;
  lock_reclaims : int;
  crashes : int;
  tag_assigns : int;
  tag_recycles : int;
  forks : int;
  cow_faults : int;
  cow_copies : int;
  rows : row list;
}

type journal_info = {
  total_appends : int;
  committed_appends : int;
  recovered : bool option;
}

type pt_audit = {
  pt_nodes : int;
  pt_shared : int;
  pt_leaked : int;
  pt_imbalanced : int;
}

let no_pt_audit = { pt_nodes = 0; pt_shared = 0; pt_leaked = 0; pt_imbalanced = 0 }

type t = {
  snapshots : phase_snap list;
  counters : counters;
  journal : journal_info option;
  pt : pt_audit;
  cow_probes : (string * int64 * int64) list;
  teardown_complete : bool;
}

let lock_of = function
  | Segment.Unlocked -> Unlocked
  | Segment.Shared n -> Shared n
  | Segment.Exclusive -> Exclusive

let capture_sys ~id sys =
  let reg = Api.registry sys in
  let segs =
    Registry.list_segs reg
    |> List.map (fun s ->
           { seg_name = Segment.name s; sid = Segment.sid s; lock = lock_of (Segment.lock_state s) })
    |> List.sort (fun a b -> compare a.sid b.sid)
  in
  let vases =
    Registry.list_vases reg
    |> List.map (fun v ->
           {
             vas_name = Vas.name v;
             vid = Vas.vid v;
             vtag = Vas.tag v;
             keys = Vas.key_allocations v;
             seg_keys = Vas.seg_key_assignments v;
           })
    |> List.sort (fun a b -> compare a.vid b.vid)
  in
  let cores =
    Api.contexts sys
    |> List.map (fun cx ->
           let p = Api.process cx in
           let core = Api.core cx in
           {
             core_id = Core.id core;
             pid = Process.pid p;
             live = Process.is_live p;
             cur_vid = Option.map (fun vh -> Vas.vid (Api.vas_of_vh vh)) (Api.current cx);
             pkru = Core.pkru core;
           })
    |> List.sort (fun a b -> compare (a.core_id, a.pid) (b.core_id, b.pid))
  in
  let live_pids =
    cores
    |> List.filter_map (fun c -> if c.live then Some c.pid else None)
    |> List.sort_uniq compare
  in
  { sys_id = id; segs; vases; free_tags = Registry.free_tag_list reg; cores; live_pids }

let capture_counters met tab =
  let obs =
    Metrics.syscall_rows met |> List.map (fun (nr, name, calls, _faults, cycles, _h) -> (nr, (name, calls, cycles)))
  in
  let tabs = Sys.snapshot tab |> List.map (fun (nr, calls, cyc) -> (Sys.number nr, (Sys.name nr, calls, cyc))) in
  let nrs = List.sort_uniq compare (List.map fst obs @ List.map fst tabs) in
  let rows =
    List.map
      (fun nr ->
        let name, obs_calls, obs_cycles =
          match List.assoc_opt nr obs with Some r -> r | None -> ("", 0, 0)
        in
        let tname, tab_calls, tab_cycles =
          match List.assoc_opt nr tabs with Some r -> r | None -> ("", 0, 0)
        in
        let nr_name = if tname <> "" then tname else name in
        { nr; nr_name; obs_calls; obs_cycles; tab_calls; tab_cycles })
      nrs
  in
  {
    lock_acquires = Metrics.lock_acquires met;
    lock_releases = Metrics.lock_releases met;
    lock_reclaims = Metrics.lock_reclaims met;
    crashes = Metrics.crashes met;
    tag_assigns = Metrics.tag_assigns met;
    tag_recycles = Metrics.tag_recycles met;
    forks = Metrics.forks met;
    cow_faults = Metrics.cow_faults met;
    cow_copies = Metrics.cow_copies met;
    rows;
  }

let final_main t =
  match List.rev t.snapshots with
  | [] -> None
  | last :: _ -> List.find_opt (fun s -> s.sys_id = "main") last.systems

let describe t =
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun ph ->
      pr "phase %s:\n" ph.phase;
      List.iter
        (fun s ->
          pr "  system %s: live_pids=[%s] free_tags=[%s]\n" s.sys_id
            (String.concat ";" (List.map string_of_int s.live_pids))
            (String.concat ";" (List.map string_of_int s.free_tags));
          List.iter
            (fun g ->
              pr "    seg %s sid=%d lock=%s\n" g.seg_name g.sid
                (match g.lock with
                | Unlocked -> "unlocked"
                | Shared n -> Printf.sprintf "shared(%d)" n
                | Exclusive -> "exclusive"))
            s.segs;
          List.iter
            (fun v ->
              pr "    vas %s vid=%d tag=%s keys=[%s] seg_keys=[%s]\n" v.vas_name v.vid
                (match v.vtag with None -> "-" | Some g -> string_of_int g)
                (String.concat ";"
                   (List.map (fun (k, p) -> Printf.sprintf "%d->%d" k p) v.keys))
                (String.concat ";"
                   (List.map (fun (s, k) -> Printf.sprintf "%d->%d" s k) v.seg_keys)))
            s.vases;
          List.iter
            (fun c ->
              pr "    core %d pid=%d live=%b cur=%s pkru=%#x\n" c.core_id c.pid c.live
                (match c.cur_vid with None -> "-" | Some v -> string_of_int v)
                c.pkru)
            s.cores)
        ph.systems)
    t.snapshots;
  let c = t.counters in
  pr "counters: acquires=%d releases=%d reclaims=%d crashes=%d tag_assigns=%d tag_recycles=%d\n"
    c.lock_acquires c.lock_releases c.lock_reclaims c.crashes c.tag_assigns c.tag_recycles;
  pr "fork counters: forks=%d cow_faults=%d cow_copies=%d\n" c.forks c.cow_faults c.cow_copies;
  List.iter
    (fun r ->
      pr "  nr %d %s obs=%d/%d tab=%d/%d\n" r.nr r.nr_name r.obs_calls r.obs_cycles r.tab_calls
        r.tab_cycles)
    c.rows;
  (match t.journal with
  | None -> pr "journal: (not run)\n"
  | Some j ->
    pr "journal: appends=%d committed=%d recovered=%s\n" j.total_appends j.committed_appends
      (match j.recovered with None -> "none" | Some b -> string_of_bool b));
  pr "pt audit: nodes=%d shared=%d leaked=%d imbalanced=%d\n" t.pt.pt_nodes t.pt.pt_shared
    t.pt.pt_leaked t.pt.pt_imbalanced;
  List.iter
    (fun (name, expected, observed) ->
      pr "cow probe %s: expected=%Ld observed=%Ld\n" name expected observed)
    t.cow_probes;
  pr "teardown_complete=%b\n" t.teardown_complete;
  Buffer.contents buf
