(** Shared driver behind [bench explore] and [sjctl explore].

    Enumerates the sweep ({!Explore.enumerate}), runs every config,
    checks every {!Invariant} after every run, replays each violating
    config from its [(backend, seed, plan)] key, evaluates the
    acceptance claims, and runs the determinism audit battery (rerun /
    trace-on / empty-fault-plan / domain pool / replay sample).

    The front-ends exit 2 without writing a report when [divergences]
    or [failed_claims] is non-empty. *)

type outcome = {
  report : Explore_report.t;
  divergences : string list;
      (** fingerprint changes under host-side conditions, or violating
          configs whose replay was not byte-identical *)
  failed_claims : string list;  (** sweep/invariant acceptance floors missed *)
}

val kind_of_fault : Sj_fault.Plan.fault -> string
val all_kinds : string list

val run : quick:bool -> jobs:int -> ?progress:(string -> unit) -> unit -> outcome
(** [jobs <= 1] runs the sweep sequentially; otherwise configs fan out
    over a domain pool of [jobs] workers (results are byte-identical
    either way — one of the audited claims). *)
