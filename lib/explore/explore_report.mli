(** BENCH_explore.json (schema ["spacejmp-bench/6-explore"]).

    The exploration run's report: sweep shape, invariant roster, every
    violation with its replay key and reproduction status, acceptance
    claims, determinism audits. {!check_string} refuses a report that
    records a divergence, a failed claim, or an unreproduced violation
    — but not one faithfully recording reproduced violations (CI greps
    ["\"violations\": 0"] separately). *)

type detail = {
  backend : string;
  seed : int;
  plan : string;  (** [Plan.to_string] — with backend and seed, the full replay key *)
  invariant : string;
  message : string;
  reproduced : bool;  (** the replay produced a byte-identical run *)
}

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  configs_run : int;
  distinct_configs : int;
  fuzz_configs : int;
  backends : string list;
  plan_kinds : string list;
  mechanisms : string list;
  invariants : (string * string) list;
  violations : int;
  details : detail list;
  enumeration_ok : bool;
  invariants_ok : bool;
  replay_ok : bool;
  determinism_ok : bool;
  audits : string list;
}

val schema : string
val to_json : t -> string
val check_string : string -> (unit, string list) result
val check_file : string -> (unit, string list) result
