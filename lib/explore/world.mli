(** Observable world state for the invariant explorer.

    A [t] is everything one exploration run exposes to the invariant
    checkers: a chronological series of structural snapshots (one per
    workload phase, each covering every live system), the final
    observability and syscall-table counters, what the persistence
    journal did, and whether teardown ran to completion.

    Everything here is a plain immutable record — deliberately so.
    Invariants ({!Invariant}) are pure functions [t -> string list],
    which means the checker tests can fabricate a broken world by
    literal record construction instead of poking test-only hooks into
    the simulator. *)

type lock = Unlocked | Shared of int | Exclusive

type seg_snap = { seg_name : string; sid : int; lock : lock }

type vas_snap = {
  vas_name : string;
  vid : int;
  vtag : int option;  (** TLB tag, if one was assigned *)
  keys : (int * int) list;  (** protection key -> owning pid *)
  seg_keys : (int * int) list;  (** sid -> protection key *)
}

type core_snap = {
  core_id : int;
  pid : int;  (** pid of the context scheduled on this core *)
  live : bool;
  cur_vid : int option;  (** VAS switched into, if any *)
  pkru : int;  (** the core's key-permission register *)
}

type sys_snap = {
  sys_id : string;  (** ["main"] or ["restored"] *)
  segs : seg_snap list;
  vases : vas_snap list;
  free_tags : int list;  (** registry free list, most recent first *)
  cores : core_snap list;  (** one per context known to the system *)
  live_pids : int list;
}

type phase_snap = { phase : string; systems : sys_snap list }

type row = {
  nr : int;
  nr_name : string;
  obs_calls : int;  (** completed calls seen by the event stream *)
  obs_cycles : int;
  tab_calls : int;  (** calls counted by the syscall table *)
  tab_cycles : int;
}

type counters = {
  lock_acquires : int;
  lock_releases : int;
  lock_reclaims : int;
  crashes : int;
  tag_assigns : int;
  tag_recycles : int;
  forks : int;  (** Fork events (vas_fork + proc_fork) *)
  cow_faults : int;  (** counted break-and-copy write traps *)
  cow_copies : int;  (** frames privatized by those traps *)
  rows : row list;  (** union of nrs seen by either side, ascending *)
}

type journal_info = {
  total_appends : int;
  committed_appends : int;
  recovered : bool option;
      (** [None]: recovery found nothing; [Some c]: it returned an
          image, [c] = that image passed [Persist.committed]. *)
}

type pt_audit = {
  pt_nodes : int;  (** live page-table nodes (alloc - free), all machines *)
  pt_shared : int;  (** reachable nodes with refcount > 1 *)
  pt_leaked : int;  (** live nodes unreachable from any root or handle *)
  pt_imbalanced : int;  (** nodes whose refcount /= recomputed indegree *)
}

val no_pt_audit : pt_audit
(** All-zero audit, for worlds where no audit ran (and test fabrication). *)

type t = {
  snapshots : phase_snap list;  (** chronological *)
  counters : counters;
  journal : journal_info option;  (** [None] when the persist phase never ran *)
  pt : pt_audit;  (** end-of-run {!Sj_paging.Page_table.audit} totals *)
  cow_probes : (string * int64 * int64) list;
      (** (probe, expected, observed) isolation probes recorded by
          fork-bearing workloads; empty when the run never forked *)
  teardown_complete : bool;
}

val capture_sys : id:string -> Sj_core.Api.system -> sys_snap
(** Snapshot one system's registry, contexts and cores. *)

val capture_counters : Sj_obs.Metrics.t -> Sj_abi.Sys.t -> counters
(** Merge the recorder's metrics with the syscall table. *)

val final_main : t -> sys_snap option
(** The ["main"] system in the last snapshot, if any. *)

val describe : t -> string
(** Multi-line rendering for violation reports. *)
