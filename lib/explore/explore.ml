module Machine = Sj_machine.Machine
module Platform = Sj_machine.Platform
module Core = Machine.Core
module Process = Sj_kernel.Process
module Error = Sj_abi.Error
module Sys = Sj_abi.Sys
module Api = Sj_core.Api
module Checked = Api.Checked
module Vas = Sj_core.Vas
module Segment = Sj_core.Segment
module Registry = Sj_core.Registry
module Prot = Sj_paging.Prot
module Plan = Sj_fault.Plan
module Injector = Sj_fault.Injector
module Recorder = Sj_obs.Recorder
module Trace = Sj_obs.Trace
module Metrics = Sj_obs.Metrics
module Persist = Sj_persist.Persist
module Size = Sj_util.Size
module Layout = Sj_kernel.Layout
module Page_table = Sj_paging.Page_table

let sp = Printf.sprintf

type mechanism = Switch | Pkey_loop

type config = {
  backend : Api.backend;
  seed : int;
  plan : Plan.t;
  fork : bool;
}

let mechanism cfg = if cfg.seed land 1 = 1 then Pkey_loop else Switch

let backend_name = function Api.Dragonfly -> "dragonfly" | Api.Barrelfish -> "barrelfish"

let mechanism_name cfg =
  match (mechanism cfg, cfg.backend) with
  | Pkey_loop, _ -> "pkey"
  | Switch, Api.Dragonfly -> "vas_reload"
  | Switch, Api.Barrelfish -> "cap_invoke"

let key cfg =
  sp "%s seed=%d%s plan=[%s]" (backend_name cfg.backend) cfg.seed
    (if cfg.fork then " fork" else "")
    (Plan.to_string cfg.plan)

type result = {
  cfg : config;
  fingerprint : int;
  fired : string;
  notes : string list;
  violations : (string * string) list;
  world : World.t;
}

let equal_result a b =
  a.fingerprint = b.fingerprint && a.fired = b.fired && a.violations = b.violations

(* A small platform so each of the hundreds of sweep points is cheap:
   4 cores over 2 sockets (cross-socket IPIs stay observable). *)
let platform =
  { Platform.m2 with Platform.name = "explore"; mem_size = Size.mib 256 }

let platform =
  { platform with Platform.sockets = 2; cores_per_socket = 2 }

(* -- the workload ----------------------------------------------------- *)

(* The harness manages its own recorder and injector; ambient tracing
   (Recorder.with_tracing) also installs per-core TLB flush hooks at
   Machine.create that would feed extra events into whatever recorder
   is attached, so they are cleared — a run must fingerprint
   identically whether or not a host-side audit turned tracing on. *)
let own_machine () =
  let m = Machine.create platform in
  Array.iter (fun c -> Sj_tlb.Tlb.set_obs (Core.tlb c) None) (Machine.cores m);
  m

let run cfg =
  let m = own_machine () in
  let recorder = Recorder.create () in
  Recorder.attach (Machine.sim_ctx m) recorder;
  let inj = Injector.create ~seed:cfg.seed cfg.plan in
  Injector.attach (Machine.sim_ctx m) inj;
  let sys = Api.boot ~backend:cfg.backend m in
  let p1 = Process.create ~name:"alice" m in
  let ctx1 = Api.context sys p1 (Machine.core m 0) in
  let p2 = Process.create ~name:"bob" m in
  let ctx2 = Api.context sys p2 (Machine.core m 1) in
  let notes = ref [] in
  let note name msg = notes := sp "%s: %s" name msg :: !notes in
  let live ctx = Process.is_live (Api.process ctx) in
  (* Every workload step is guarded: a planned kill, an API fault
     (typed or legacy-exception style), or a hardware-level consequence
     of an earlier injected fault (page fault on a never-attached
     segment, OOM after a failed grow) ends the step — noted,
     deterministically — instead of the run, so the sweep always
     reaches teardown and the invariant checks. Anything else is a
     harness bug and propagates. *)
  let fault_note name e =
    match e with
    | Injector.Killed k -> note name (sp "killed pid %d in %s" k.pid k.op)
    | Machine.Page_fault { va; _ } -> note name (sp "page fault at %#x" va)
    | Machine.Protection_fault { va; _ } -> note name (sp "protection fault at %#x" va)
    | Machine.Key_fault { va; _ } -> note name (sp "key fault at %#x" va)
    | Sj_mem.Phys_mem.Out_of_memory -> note name "out of physical memory"
    | e -> (
      match Sj_core.Errors.fault_of_exn e with
      | Some f -> note name (Error.to_string f)
      | None -> raise e)
  in
  let guard ctx name f = if live ctx then try f () with e -> fault_note name e in
  (* Bounded retry over transient Would_block — the storm counts the
     sweep enumerates (<= 6) always drain within the budget, so
     teardown cannot wedge. *)
  let attempt ctx name f =
    if live ctx then begin
      let rec go n =
        match f () with
        | Ok () -> ()
        | Error e when e.Error.code = Error.Would_block && n > 0 -> go (n - 1)
        | Error e -> note name (Error.to_string e)
        | exception e -> fault_note name e
      in
      go 8
    end
  in
  let snaps = ref [] in
  let restored = ref None in
  let restored_machine = ref None in
  let snap phase =
    let systems =
      World.capture_sys ~id:"main" sys
      :: (match !restored with
         | Some (sys2, _) -> [ World.capture_sys ~id:"restored" sys2 ]
         | None -> [])
    in
    snaps := { World.phase; systems } :: !snaps
  in
  let vas = ref None and data = ref None and sand = ref None in
  let vh1 = ref None and vh2 = ref None in
  let on r f = Option.iter f !r in
  (* Switch into [vhref], run [f] inside, switch home — each leg
     guarded, so a kill mid-flight leaves crash teardown to clean up. *)
  let with_vas ctx vhref name f =
    on vhref (fun vh ->
        if live ctx then begin
          match Checked.switch_retry ~attempts:8 ctx vh with
          | Ok () ->
            guard ctx name f;
            attempt ctx (name ^ "/home") (fun () -> Checked.switch_home ctx)
          | Error e -> note (name ^ "/switch") (Error.to_string e)
          | exception e -> fault_note (name ^ "/switch") e
        end)
  in

  (* setup: one VAS, two segments (data plain, sand for compartments),
     a TLB tag, the first growth point, both processes attached. *)
  guard ctx1 "vas_create" (fun () -> vas := Some (Api.vas_create ctx1 ~name:"w" ~mode:0o666));
  guard ctx1 "seg_alloc data" (fun () ->
      data := Some (Api.seg_alloc_anywhere ctx1 ~name:"w.data" ~size:(Size.kib 256) ~mode:0o666));
  guard ctx1 "seg_alloc sand" (fun () ->
      sand := Some (Api.seg_alloc_anywhere ctx1 ~name:"w.sand" ~size:(Size.kib 64) ~mode:0o666));
  on vas (fun v ->
      on data (fun d -> guard ctx1 "attach data" (fun () -> Api.seg_attach ctx1 v d ~prot:Prot.rw));
      on sand (fun s -> guard ctx1 "attach sand" (fun () -> Api.seg_attach ctx1 v s ~prot:Prot.rw));
      guard ctx1 "request_tag" (fun () -> Api.vas_ctl ctx1 (`Request_tag v));
      guard ctx1 "vas_find" (fun () -> ignore (Api.vas_find ctx1 ~name:"w")));
  on data (fun d -> guard ctx1 "grow-1" (fun () -> Api.seg_ctl ctx1 (`Grow (d, Size.kib 16))));
  on vas (fun v -> guard ctx1 "vas_attach p1" (fun () -> vh1 := Some (Api.vas_attach ctx1 v)));
  on vas (fun v -> guard ctx2 "vas_attach p2" (fun () -> vh2 := Some (Api.vas_attach ctx2 v)));
  snap "setup";

  (* hot loop: the mechanism under test, alternating both processes. *)
  (match mechanism cfg with
  | Switch ->
    for i = 1 to 3 do
      with_vas ctx1 vh1 (sp "hot-w%d" i) (fun () ->
          on data (fun d ->
              Api.store64 ctx1 ~va:(Segment.base d) (Int64.of_int i);
              if i = 1 then begin
                let p = Api.malloc ctx1 ~seg:d 64 in
                Api.store64 ctx1 ~va:p 7L;
                Api.free ctx1 p
              end));
      with_vas ctx2 vh2 (sp "hot-r%d" i) (fun () ->
          on data (fun d -> ignore (Api.load64 ctx2 ~va:(Segment.base d))))
    done
  | Pkey_loop ->
    let hotkey = ref None in
    with_vas ctx1 vh1 "hot-pk-setup" (fun () ->
        on vas (fun v ->
            on sand (fun s ->
                let k = Api.pkey_alloc ctx1 v in
                Api.pkey_assign ctx1 v s ~key:k;
                hotkey := Some k)));
    for i = 1 to 3 do
      with_vas ctx1 vh1 (sp "hot-pk%d" i) (fun () ->
          on hotkey (fun k ->
              on sand (fun s ->
                  Api.pkey_switch ctx1 ~key:k;
                  ignore (Api.load64 ctx1 ~va:(Segment.base s));
                  Api.pkey_switch ctx1 ~key:0));
          on data (fun d -> Api.store64 ctx1 ~va:(Segment.base d) (Int64.of_int i)));
      with_vas ctx2 vh2 (sp "hot-pkr%d" i) (fun () ->
          on data (fun d -> ignore (Api.load64 ctx2 ~va:(Segment.base d))))
    done);
  on data (fun d -> guard ctx1 "grow-2" (fun () -> Api.seg_ctl ctx1 (`Grow (d, Size.kib 16))));
  snap "hot";

  (* μFork phase (fork-bearing configs only): P1 marks a home-space page
     and a VAS page, CoW-forks its process onto the spare core, then
     CoW-forks the VAS. Both sides write behind each fork; every read
     lands in [cow_probes] as a (probe, expected, observed) triple and
     the cow-isolation invariant does the comparing. A planned kill
     mid-phase (the kill-forked-child plans) truncates the probe list —
     whatever probes did run must still agree. The child stays live
     into teardown so later snapshots see its pid, keys and register. *)
  let cow_probes = ref [] in
  let kid = ref None and kvh = ref None and fvh = ref None in
  if cfg.fork then begin
    let read ctx name va =
      if live ctx then (
        try Some (Api.load64 ctx ~va)
        with e ->
          fault_note name e;
          None)
      else None
    in
    let probe name expected = function
      | Some observed -> cow_probes := (name, expected, observed) :: !cow_probes
      | None -> ()
    in
    let hva = Layout.data_base + 192 in
    guard ctx1 "fork-mark-home" (fun () -> Api.store64 ctx1 ~va:hva 0xA11CEL);
    with_vas ctx1 vh1 "fork-mark-vas" (fun () ->
        on data (fun d -> Api.store64 ctx1 ~va:(Segment.base d + 128) 0xBEEFL));
    guard ctx1 "proc_fork" (fun () ->
        kid := Some (Api.proc_fork ~name:"kid" ctx1 ~core:(Machine.core m 3)));
    (* Home-space CoW: the child privatizes its data page; the parent's
       must not move, and the parent's later write must not reach the
       child's already-broken copy. *)
    on kid (fun k ->
        guard k "kid-home-write" (fun () -> Api.store64 k ~va:hva 0x6B1DL);
        probe "kid-own-home" 0x6B1DL (read k "kid-own-home" hva));
    probe "parent-home-after-kid" 0xA11CEL (read ctx1 "parent-home-after-kid" hva);
    guard ctx1 "parent-home-write" (fun () -> Api.store64 ctx1 ~va:hva 0x0DADL);
    on kid (fun k ->
        probe "kid-home-after-parent" 0x6B1DL (read k "kid-home-after-parent" hva));
    (* proc_fork attachments are shared, not CoW: the child re-attaches
       the VAS and must read exactly what the parent reads there. *)
    let pval = ref None in
    with_vas ctx1 vh1 "fork-src-read" (fun () ->
        on data (fun d -> pval := read ctx1 "fork-src-read" (Segment.base d + 128)));
    on kid (fun k ->
        on vas (fun v -> guard k "kid-attach" (fun () -> kvh := Some (Api.vas_attach k v)));
        with_vas k kvh "kid-seg-read" (fun () ->
            on data (fun d ->
                on pval (fun e ->
                    probe "kid-shared-seg" e (read k "kid-seg-read" (Segment.base d + 128))))));
    (* VAS-side CoW: snapshot the whole VAS, write into the shadow; the
       source must keep its mark. *)
    on vh1 (fun vh ->
        guard ctx1 "vas_fork" (fun () -> fvh := Some (Api.vas_fork ctx1 vh ~name:"w.fork")));
    with_vas ctx1 fvh "fork-shadow" (fun () ->
        on data (fun d ->
            Api.store64 ctx1 ~va:(Segment.base d + 128) 0xF00DL;
            probe "shadow-own-write" 0xF00DL (read ctx1 "fork-shadow" (Segment.base d + 128))));
    with_vas ctx1 vh1 "fork-source-check" (fun () ->
        on data (fun d ->
            on pval (fun e ->
                probe "source-after-shadow" e
                  (read ctx1 "fork-source-check" (Segment.base d + 128)))));
    snap "fork"
  end;

  (* compartment window: P1 allocates a key and tags the sandbox; P2
     enters the compartment; P1 makes one more syscall while P2 is
     inside (the kill window the pkru-hygiene invariant watches); the
     snapshot lands before P2 leaves. *)
  let ckey = ref None in
  on vas (fun v ->
      on sand (fun s ->
          guard ctx1 "pkey_alloc" (fun () -> ckey := Some (Api.pkey_alloc ctx1 v));
          on ckey (fun k -> guard ctx1 "pkey_assign" (fun () -> Api.pkey_assign ctx1 v s ~key:k))));
  on vh2 (fun vh ->
      if live ctx2 then begin
        match Checked.switch_retry ~attempts:8 ctx2 vh with
        | Ok () ->
          on ckey (fun k ->
              guard ctx2 "compart-enter" (fun () ->
                  Api.pkey_switch ctx2 ~key:k;
                  on sand (fun s -> ignore (Api.load64 ctx2 ~va:(Segment.base s)))));
          guard ctx1 "window seg_find" (fun () -> ignore (Api.seg_find ctx1 ~name:"w.sand"));
          snap "compartment";
          guard ctx2 "compart-leave" (fun () -> Api.pkey_switch ctx2 ~key:0);
          attempt ctx2 "compart-home" (fun () -> Checked.switch_home ctx2)
        | Error e ->
          note "compart/switch" (Error.to_string e);
          snap "compartment"
        | exception e ->
          fault_note "compart/switch" e;
          snap "compartment"
      end
      else snap "compartment");
  if !vh2 = None then snap "compartment";

  (* persist: a third growth point, two journaled saves (torn-write
     targets), recovery. *)
  on data (fun d -> guard ctx1 "grow-3" (fun () -> Api.seg_ctl ctx1 (`Grow (d, Size.kib 16))));
  let img1 = Persist.save sys in
  let img2 = Persist.save sys in
  let journal = Persist.Journal.append (Persist.Journal.append Persist.Journal.empty img1) img2 in
  let committed_appends =
    (if Persist.committed img1 then 1 else 0) + if Persist.committed img2 then 1 else 0
  in
  let recovered_img = Persist.Journal.recover journal in
  let journal_info =
    Some
      {
        World.total_appends = 2;
        committed_appends;
        recovered = Option.map Persist.committed recovered_img;
      }
  in
  snap "persist";

  (* restore: rebuild the recovered image in a fresh system and probe
     its allocators (the window where a restored TLB tag must not be
     issued twice). The second machine carries no injector: restore is
     the recovery path, not the faulted one. *)
  (match recovered_img with
  | Some img when Persist.committed img ->
    let m2 = own_machine () in
    restored_machine := Some m2;
    let sys2 = Api.boot ~backend:cfg.backend m2 in
    let p3 = Process.create ~name:"carol" m2 in
    let ctx3 = Api.context sys2 p3 (Machine.core m2 0) in
    (try Persist.restore sys2 img with e -> fault_note "restore" e);
    restored := Some (sys2, ctx3);
    guard ctx3 "probe vas" (fun () ->
        let pv = Api.vas_create ctx3 ~name:"probe" ~mode:0o666 in
        Api.vas_ctl ctx3 (`Request_tag pv));
    snap "restore"
  | _ -> ());

  (* teardown: both workers exit, a reaper destroys every object on
     both systems. Completion is recorded, not assumed — invariants
     that need a drained world check the flag. *)
  attempt ctx2 "exit p2" (fun () -> Checked.exit_process ctx2);
  attempt ctx1 "exit p1" (fun () -> Checked.exit_process ctx1);
  on kid (fun k -> attempt k "exit kid" (fun () -> Checked.exit_process k));
  let reaper = Process.create ~name:"reaper" m in
  let ctxr = Api.context sys reaper (Machine.core m 2) in
  let reg = Api.registry sys in
  List.iter
    (fun v -> attempt ctxr (sp "destroy vas %s" (Vas.name v)) (fun () -> Checked.vas_ctl ctxr (`Destroy v)))
    (List.sort (fun a b -> compare (Vas.vid a) (Vas.vid b)) (Registry.list_vases reg));
  List.iter
    (fun s ->
      attempt ctxr (sp "destroy seg %s" (Segment.name s)) (fun () -> Checked.seg_ctl ctxr (`Destroy s)))
    (List.sort (fun a b -> compare (Segment.sid a) (Segment.sid b)) (Registry.list_segs reg));
  (match !restored with
  | Some (sys2, ctx3) ->
    let reg2 = Api.registry sys2 in
    List.iter
      (fun v ->
        attempt ctx3 (sp "destroy restored vas %s" (Vas.name v)) (fun () ->
            Checked.vas_ctl ctx3 (`Destroy v)))
      (List.sort (fun a b -> compare (Vas.vid a) (Vas.vid b)) (Registry.list_vases reg2));
    List.iter
      (fun s ->
        attempt ctx3 (sp "destroy restored seg %s" (Segment.name s)) (fun () ->
            Checked.seg_ctl ctx3 (`Destroy s)))
      (List.sort (fun a b -> compare (Segment.sid a) (Segment.sid b)) (Registry.list_segs reg2));
    attempt ctx3 "exit carol" (fun () -> Checked.exit_process ctx3)
  | None -> ());
  attempt ctxr "exit reaper" (fun () -> Checked.exit_process ctxr);
  let teardown_complete =
    Registry.list_vases reg = []
    && Registry.list_segs reg = []
    && (not (live ctx1))
    && (not (live ctx2))
    && match !kid with None -> true | Some k -> not (live k)
  in
  snap "final";

  (* Recompute every page-table refcount from first principles, on both
     machines — the refcount-balance invariant's evidence. *)
  let pt =
    let fold acc m' =
      let a = Page_table.audit (Machine.mem m') in
      {
        World.pt_nodes = acc.World.pt_nodes + a.Page_table.a_nodes;
        pt_shared = acc.World.pt_shared + a.Page_table.a_shared;
        pt_leaked = acc.World.pt_leaked + a.Page_table.a_leaked;
        pt_imbalanced = acc.World.pt_imbalanced + List.length a.Page_table.a_imbalanced;
      }
    in
    List.fold_left fold World.no_pt_audit
      (m :: (match !restored_machine with Some m2 -> [ m2 ] | None -> []))
  in
  let world =
    {
      World.snapshots = List.rev !snaps;
      counters = World.capture_counters (Recorder.metrics recorder) (Api.syscalls sys);
      journal = journal_info;
      pt;
      cow_probes = List.rev !cow_probes;
      teardown_complete;
    }
  in
  let violations = Invariant.check_all world in
  let fired = Plan.to_string (Injector.fired inj) in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Trace.to_text (Recorder.events recorder));
  Buffer.add_string buf (Metrics.describe (Recorder.metrics recorder));
  Buffer.add_string buf (Sys.describe (Api.syscalls sys));
  Buffer.add_string buf (Registry.describe reg);
  (match !restored with
  | Some (sys2, _) ->
    Buffer.add_string buf (Sys.describe (Api.syscalls sys2));
    Buffer.add_string buf (Registry.describe (Api.registry sys2))
  | None -> ());
  Array.iter (fun c -> Buffer.add_string buf (sp "core:%d\n" (Core.cycles c))) (Machine.cores m);
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) (List.rev !notes);
  Buffer.add_string buf fired;
  Buffer.add_string buf (World.describe world);
  {
    cfg;
    fingerprint = Sj_compress.Crc32.string (Buffer.contents buf);
    fired;
    notes = List.rev !notes;
    violations;
    world;
  }

(* -- the sweep -------------------------------------------------------- *)

let hot_nrs_p2 = [ 3; 5; 6; 19; 21; 23; 29 ]
let storm_nrs = [ 5; 3; 29; 17; 23 ]

let per_backend backend =
  let c ?(fork = false) seed plan = { backend; seed; plan; fork } in
  (* kills of pid 1 swept over the whole ABI; seed 40+nr alternates the
     mechanism axis with the entry number. *)
  let kill_sweep =
    List.init Sys.nr_count (fun nr ->
        c (40 + nr) [ Plan.kill_at_syscall ~pid:1 ~nr ~occurrence:1 () ])
  in
  let kill_p2 =
    List.map (fun nr -> c (80 + nr) [ Plan.kill_at_syscall ~pid:2 ~nr ~occurrence:1 () ]) hot_nrs_p2
  in
  let kill_locked =
    List.concat_map
      (fun pid ->
        List.map
          (fun seed -> c seed [ Plan.kill_holding_lock ~pid ~sid:1 ])
          [ 120 + (2 * pid); 121 + (2 * pid) ])
      [ 1; 2 ]
  in
  let storms =
    List.concat_map
      (fun nr ->
        List.map (fun count -> c (140 + nr + count) [ Plan.would_block_storm ~pid:1 ~nr ~count ]) [ 2; 5 ])
      storm_nrs
    @ List.map (fun nr -> c (160 + nr) [ Plan.would_block_storm ~pid:2 ~nr ~count:3 ]) [ 5; 29 ]
  in
  let grows = List.map (fun nth -> c (170 + nth) [ Plan.grow_fail ~nth ]) [ 1; 2; 3 ] in
  let torn =
    List.concat_map
      (fun save -> List.map (fun seed -> c seed [ Plan.torn_write ~save () ]) [ 13 + (10 * save); 14 + (10 * save) ])
      [ 1; 2 ]
  in
  let composed =
    [
      c 200
        [
          Plan.kill_at_syscall ~pid:1 ~nr:5 ~occurrence:2 ();
          Plan.would_block_storm ~pid:2 ~nr:5 ~count:2;
        ];
      c 201 [ Plan.torn_write ~save:1 (); Plan.grow_fail ~nth:1 ];
      c 202
        [
          Plan.would_block_storm ~pid:1 ~nr:5 ~count:3;
          Plan.torn_write ~save:2 ();
          Plan.kill_at_syscall ~pid:2 ~nr:23 ~occurrence:1 ();
        ];
    ]
  in
  let baselines = [ c 0 []; c 1 [] ] in
  (* μFork block: fork-bearing baselines on both mechanism parities,
     kills of pid 1 at the fork entries themselves, kills and a storm
     aimed at the forked child (pid 3 — alice and bob are 1 and 2),
     and a fork composed with a torn write. *)
  let forks =
    [ c ~fork:true 300 []; c ~fork:true 301 [] ]
    @ List.map
        (fun nr -> c ~fork:true (310 + nr) [ Plan.kill_at_syscall ~pid:1 ~nr ~occurrence:1 () ])
        [ Sys.number Sys.Vas_fork; Sys.number Sys.Proc_fork ]
    @ List.map
        (fun nr -> c ~fork:true (350 + nr) [ Plan.kill_at_syscall ~pid:3 ~nr ~occurrence:1 () ])
        [ 3; 5; 6; 23 ]
    @ [
        c ~fork:true 370 [ Plan.would_block_storm ~pid:3 ~nr:5 ~count:2 ];
        c ~fork:true 371
          [ Plan.torn_write ~save:1 (); Plan.kill_at_syscall ~pid:3 ~nr:6 ~occurrence:1 () ];
      ]
  in
  kill_sweep @ kill_p2 @ kill_locked @ storms @ grows @ torn @ composed @ baselines @ forks

(* Seeded LCG fuzz past the grid: 1–3 faults per plan, storm counts
   kept below the retry budget. Deterministic by construction. *)
let fuzz n =
  List.init n (fun i ->
      let state = ref ((i * 2654435761) + 0x9e3779b9) in
      let next m =
        state := ((!state * 25214903917) + 11) land 0x3FFFFFFFFFFF;
        !state mod m
      in
      let backend = if next 2 = 0 then Api.Dragonfly else Api.Barrelfish in
      let nfaults = 1 + next 3 in
      let fault _ =
        match next 5 with
        | 0 -> Plan.kill_at_syscall ~pid:(1 + next 2) ~nr:(next Sys.nr_count) ~occurrence:(1 + next 2) ()
        | 1 -> Plan.kill_holding_lock ~pid:(1 + next 2) ~sid:(1 + next 2)
        | 2 ->
          Plan.would_block_storm ~pid:(1 + next 2)
            ~nr:(List.nth [ 3; 5; 6; 29 ] (next 4))
            ~count:(1 + next 5)
        | 3 -> Plan.grow_fail ~nth:(1 + next 3)
        | _ -> Plan.torn_write ~save:(1 + next 2) ()
      in
      { backend; seed = 1000 + i; plan = List.init nfaults fault; fork = false })

let enumerate ~quick =
  per_backend Api.Dragonfly @ per_backend Api.Barrelfish @ fuzz (if quick then 16 else 64)
