let align = 16
let min_chunk = 16
let small_limit = 4096
let n_small_bins = small_limit / align (* one bin per exact size class *)
let n_large_bins = 40
let n_bins = n_small_bins + n_large_bins

type chunk = {
  mutable base : int;
  mutable size : int;
  mutable free : bool;
  (* Address-ordered neighbours. *)
  mutable prev : chunk option;
  mutable next : chunk option;
  (* Free-list links (valid only while [free]). *)
  mutable fprev : chunk option;
  mutable fnext : chunk option;
}

type t = {
  range_base : int;
  mutable range_size : int;
  bins : chunk option array;
  (* One bit per bin, set iff the bin is nonempty (dlmalloc's binmap):
     [find_fit] jumps to the first populated bin at or above the
     request's class instead of scanning hundreds of empty ones. The
     map is a pure index over [bins] — which chunk a malloc returns is
     decided by bin order exactly as before. *)
  binmap : int array;
  live : (int, chunk) Hashtbl.t; (* allocation base -> chunk *)
  mutable first : chunk;
  mutable used : int;
  mutable n_live : int;
}

let bin_index size =
  if size <= small_limit then (size / align) - 1
  else
    let idx = n_small_bins + Sj_util.Size.log2 size - 12 in
    min idx (n_bins - 1)

let binmap_words = (n_bins + 62) / 63

let mark_bin t i = t.binmap.(i / 63) <- t.binmap.(i / 63) lor (1 lsl (i mod 63))

let clear_bin t i =
  t.binmap.(i / 63) <- t.binmap.(i / 63) land lnot (1 lsl (i mod 63))

(* Lowest set bit's index in [w], which must be nonzero. *)
let lowest_bit w =
  let rec go i = if (w lsr i) land 1 = 1 then i else go (i + 1) in
  go 0

(* First nonempty bin >= [i], or -1. *)
let next_bin t i =
  let rec go word mask =
    if word >= binmap_words then -1
    else
      let w = t.binmap.(word) land mask in
      if w <> 0 then (word * 63) + lowest_bit w else go (word + 1) (-1)
  in
  go (i / 63) (-1 lsl (i mod 63))

let unlink_free t c =
  (match c.fprev with
  | Some p -> p.fnext <- c.fnext
  | None ->
    let i = bin_index c.size in
    t.bins.(i) <- c.fnext;
    if c.fnext = None then clear_bin t i);
  (match c.fnext with Some n -> n.fprev <- c.fprev | None -> ());
  c.fprev <- None;
  c.fnext <- None

let push_free t c =
  let i = bin_index c.size in
  c.fprev <- None;
  c.fnext <- t.bins.(i);
  (match t.bins.(i) with Some head -> head.fprev <- Some c | None -> mark_bin t i);
  t.bins.(i) <- Some c

let create ~base ~size =
  if base mod align <> 0 then invalid_arg "Mspace.create: base not 16-aligned";
  if size < min_chunk || size mod align <> 0 then invalid_arg "Mspace.create: bad size";
  let first =
    { base; size; free = true; prev = None; next = None; fprev = None; fnext = None }
  in
  let t =
    {
      range_base = base;
      range_size = size;
      bins = Array.make n_bins None;
      binmap = Array.make binmap_words 0;
      live = Hashtbl.create 64;
      first;
      used = 0;
      n_live = 0;
    }
  in
  push_free t first;
  t

let base t = t.range_base
let size t = t.range_size

let request_size n =
  let n = max n min_chunk in
  (n + align - 1) / align * align

(* Find a free chunk of at least [need] bytes: exact small bin first,
   then progressively larger bins (first fit within a bin). *)
let find_fit t need =
  let rec scan_bin chunk =
    match chunk with
    | None -> None
    | Some c -> if c.size >= need then Some c else scan_bin c.fnext
  in
  let rec go i =
    if i < 0 then None
    else
      match scan_bin t.bins.(i) with
      | Some c -> Some c
      | None -> if i + 1 >= n_bins then None else go (next_bin t (i + 1))
  in
  go (next_bin t (bin_index need))

let split t c need =
  if c.size - need >= min_chunk then begin
    let rest =
      {
        base = c.base + need;
        size = c.size - need;
        free = true;
        prev = Some c;
        next = c.next;
        fprev = None;
        fnext = None;
      }
    in
    (match c.next with Some n -> n.prev <- Some rest | None -> ());
    c.next <- Some rest;
    c.size <- need;
    push_free t rest
  end

let malloc t n =
  let need = request_size n in
  match find_fit t need with
  | None -> None
  | Some c ->
    unlink_free t c;
    split t c need;
    c.free <- false;
    t.used <- t.used + c.size;
    t.n_live <- t.n_live + 1;
    Hashtbl.replace t.live c.base c;
    Some c.base

(* Merge [b] into [a]; both must be address-adjacent with a before b.
   [b] must already be unlinked from the free lists. *)
let absorb t a b =
  assert (a.base + a.size = b.base);
  a.size <- a.size + b.size;
  a.next <- b.next;
  (match b.next with Some n -> n.prev <- Some a | None -> ());
  if t.first == b then t.first <- a

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Mspace.free: not an allocation base (double free?)"
  | Some c ->
    Hashtbl.remove t.live addr;
    t.used <- t.used - c.size;
    t.n_live <- t.n_live - 1;
    c.free <- true;
    (* Coalesce with the next neighbour, then the previous one. *)
    (match c.next with
    | Some n when n.free ->
      unlink_free t n;
      absorb t c n
    | Some _ | None -> ());
    (match c.prev with
    | Some p when p.free ->
      unlink_free t p;
      absorb t p c;
      push_free t p
    | Some _ | None -> push_free t c)

let usable_size t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Mspace.usable_size: not an allocation base"
  | Some c -> c.size

let is_allocated t addr = Hashtbl.mem t.live addr
let owns t addr = addr >= t.range_base && addr < t.range_base + t.range_size
let used_bytes t = t.used
let free_bytes t = t.range_size - t.used
let allocations t = t.n_live

let largest_free t =
  let best = ref 0 in
  Array.iter
    (fun bin ->
      let rec go = function
        | None -> ()
        | Some c ->
          if c.size > !best then best := c.size;
          go c.fnext
      in
      go bin)
    t.bins;
  !best

let extend t ~by =
  if by <= 0 || by mod align <> 0 then invalid_arg "Mspace.extend: by must be a positive multiple of 16";
  (* Find the last chunk. *)
  let rec last c = match c.next with Some n -> last n | None -> c in
  let tail = last t.first in
  if tail.free then begin
    (* Absorb the new space into the trailing free chunk (rebin). *)
    unlink_free t tail;
    tail.size <- tail.size + by;
    push_free t tail
  end
  else begin
    let fresh =
      {
        base = t.range_base + t.range_size;
        size = by;
        free = true;
        prev = Some tail;
        next = None;
        fprev = None;
        fnext = None;
      }
    in
    tail.next <- Some fresh;
    push_free t fresh
  end;
  t.range_size <- t.range_size + by

type chunk_state = { chunk_base : int; chunk_size : int; chunk_free : bool }

let snapshot t =
  let rec go c acc =
    let acc = { chunk_base = c.base; chunk_size = c.size; chunk_free = c.free } :: acc in
    match c.next with Some n -> go n acc | None -> List.rev acc
  in
  go t.first []

let of_snapshot ~base ~size chunks =
  (* Validate tiling first. *)
  let rec check expected = function
    | [] ->
      if expected <> base + size then invalid_arg "Mspace.of_snapshot: chunks do not tile range"
    | c :: rest ->
      if c.chunk_base <> expected || c.chunk_size < min_chunk || c.chunk_size mod align <> 0
      then invalid_arg "Mspace.of_snapshot: bad chunk layout";
      check (c.chunk_base + c.chunk_size) rest
  in
  check base chunks;
  let t = create ~base ~size in
  (* Replace the single free chunk with the recorded layout. *)
  unlink_free t t.first;
  let rec build prev = function
    | [] -> ()
    | c :: rest ->
      let node =
        {
          base = c.chunk_base;
          size = c.chunk_size;
          free = c.chunk_free;
          prev;
          next = None;
          fprev = None;
          fnext = None;
        }
      in
      (match prev with
      | Some p -> p.next <- Some node
      | None -> t.first <- node);
      if c.chunk_free then push_free t node
      else begin
        t.used <- t.used + c.chunk_size;
        t.n_live <- t.n_live + 1;
        Hashtbl.replace t.live c.chunk_base node
      end;
      build (Some node) rest
  in
  build None chunks;
  t

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  (* 1. Chunks tile the range exactly, in address order. *)
  let rec walk c expected count =
    if c.base <> expected then fail "chunk at %#x, expected %#x" c.base expected;
    if c.size < min_chunk || c.size mod align <> 0 then fail "bad chunk size %d" c.size;
    (match (c.free, c.next) with
    | true, Some n when n.free -> fail "adjacent free chunks at %#x" c.base
    | _ -> ());
    (match c.next with
    | Some n ->
      (match n.prev with
      | Some p when p == c -> ()
      | Some _ | None -> fail "broken prev link at %#x" n.base);
      walk n (c.base + c.size) (count + 1)
    | None ->
      if c.base + c.size <> t.range_base + t.range_size then
        fail "last chunk ends at %#x, expected range end" (c.base + c.size);
      count + 1)
  in
  let total_chunks = walk t.first t.range_base 0 in
  (* 2. Every free chunk is in exactly one free list; every list entry
        is free and in the right bin. *)
  let free_listed = Hashtbl.create 16 in
  Array.iteri
    (fun i bin ->
      let rec go prev = function
        | None -> ()
        | Some c ->
          if not c.free then fail "allocated chunk %#x on free list" c.base;
          if bin_index c.size <> i then fail "chunk %#x in wrong bin" c.base;
          (match (c.fprev, prev) with
          | None, None -> ()
          | Some a, Some b when a == b -> ()
          | _ -> fail "broken fprev at %#x" c.base);
          if Hashtbl.mem free_listed c.base then fail "chunk %#x on two lists" c.base;
          Hashtbl.replace free_listed c.base ();
          go (Some c) c.fnext
      in
      go None bin)
    t.bins;
  let rec count_free c acc =
    let acc = if c.free then acc + 1 else acc in
    match c.next with Some n -> count_free n acc | None -> acc
  in
  let n_free = count_free t.first 0 in
  if Hashtbl.length free_listed <> n_free then
    fail "free-list population %d <> free chunks %d" (Hashtbl.length free_listed) n_free;
  (* 3. The binmap is exactly the set of nonempty bins. *)
  Array.iteri
    (fun i bin ->
      let mapped = t.binmap.(i / 63) land (1 lsl (i mod 63)) <> 0 in
      match (bin, mapped) with
      | Some _, false -> fail "nonempty bin %d missing from binmap" i
      | None, true -> fail "empty bin %d set in binmap" i
      | Some _, true | None, false -> ())
    t.bins;
  (* 4. Accounting. *)
  let rec sum_used c acc =
    let acc = if c.free then acc else acc + c.size in
    match c.next with Some n -> sum_used n acc | None -> acc
  in
  if sum_used t.first 0 <> t.used then fail "used-bytes accounting drift";
  if Hashtbl.length t.live + n_free <> total_chunks then fail "live-table drift"
