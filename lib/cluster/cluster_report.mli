(** BENCH_cluster.json emission and validation.

    Schema "spacejmp-bench/4-cluster" — the bench report family
    extended to the sharded cluster: a headline single-op-vs-batched
    pair at the same scale, the sweep grid over
    shards x batch x pipeline x backend, an optional fault section
    with the per-window availability timeline, and the determinism
    audit verdict. The checker refuses a report that records a
    divergence (the harness exits 2 before writing one). *)

type point = { cfg : Cluster.config; res : Cluster.result }

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  baseline : point;  (** batch = 1, pipeline = 1 *)
  batched : point;  (** same scale, batched + pipelined *)
  grid : point list;
  fault : point option;
  determinism_ok : bool;
  audits : string list;  (** which identity audits ran *)
}

val schema : string
val backend_name : Sj_core.Api.backend -> string
val to_json : t -> string
val check_string : string -> (unit, string list) result
val check_file : string -> (unit, string list) result
