(* BENCH_cluster.json, schema "spacejmp-bench/4-cluster".

   Extends the spacejmp-bench report family to the sharded cluster:
   the same host block and determinism discipline (a report that
   records a divergence is refused by the checker; the harness exits 2
   before writing one), plus cluster-specific sections — a headline
   pair (single-op baseline vs batched+pipelined at the same scale), a
   sweep grid over shards x batch x pipeline x backend, and an
   optional fault section with the per-window availability timeline
   through a shard crash. All simulated numbers are integers from the
   runs' fingerprints; throughput and quantiles come from the DES
   timeline and {!Sj_obs.Hist}, never from formulas. *)

type point = { cfg : Cluster.config; res : Cluster.result }

type t = {
  quick : bool;
  jobs : int;
  cores : int;
  ocaml_version : string;
  baseline : point;  (* batch = 1, pipeline = 1 *)
  batched : point;  (* same scale, batched + pipelined *)
  grid : point list;
  fault : point option;
  determinism_ok : bool;
  audits : string list;  (* which identity audits ran *)
}

let schema = "spacejmp-bench/4-cluster"

let backend_name = function
  | Sj_core.Api.Dragonfly -> "dragonfly"
  | Sj_core.Api.Barrelfish -> "barrelfish"

let add_point b ~indent ~label p =
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let pad = String.make indent ' ' in
  let c = p.cfg and r = p.res in
  add "%s\"%s\": {\n" pad label;
  add "%s  \"machines\": %d,\n" pad c.Cluster.machines;
  add "%s  \"shards\": %d,\n" pad c.shards;
  add "%s  \"batch\": %d,\n" pad c.batch;
  add "%s  \"pipeline\": %d,\n" pad c.pipeline;
  add "%s  \"backend\": \"%s\",\n" pad (backend_name c.backend);
  add "%s  \"tags\": %b,\n" pad c.tags;
  add "%s  \"clients\": %d,\n" pad c.clients;
  add "%s  \"requests\": %d,\n" pad r.Cluster.requests;
  add "%s  \"duration_cycles\": %d,\n" pad r.duration_cycles;
  add "%s  \"seconds\": %.6f,\n" pad r.seconds;
  add "%s  \"throughput_rps\": %.0f,\n" pad r.throughput;
  add "%s  \"p50_cycles\": %d,\n" pad r.p50;
  add "%s  \"p99_cycles\": %d,\n" pad r.p99;
  add "%s  \"p999_cycles\": %d,\n" pad r.p999;
  add "%s  \"mean_latency_cycles\": %.0f,\n" pad r.mean_latency;
  add "%s  \"switches\": %d,\n" pad r.switches;
  add "%s  \"batches\": %d,\n" pad r.batches;
  add "%s  \"avg_batch\": %.2f,\n" pad r.avg_batch;
  add "%s  \"ring_stalls\": %d,\n" pad r.ring_stalls;
  add "%s  \"server_backlog_peak\": %d,\n" pad r.server_backlog_peak;
  add "%s  \"edge_backlog_peak\": %d,\n" pad r.edge_backlog_peak;
  add "%s  \"simulated\": {" pad;
  List.iteri
    (fun j (k, v) ->
      if j > 0 then add ", ";
      add "\"%s\": %d" k v)
    r.fingerprint;
  add "}\n";
  add "%s}" pad

let to_json r =
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"schema\": \"%s\",\n" schema;
  add "  \"mode\": \"%s\",\n" (if r.quick then "quick" else "full");
  add "  \"host\": {\n";
  add "    \"cores\": %d,\n" r.cores;
  add "    \"ocaml_version\": \"%s\",\n" r.ocaml_version;
  add "    \"jobs\": %d\n" r.jobs;
  add "  },\n";
  add "  \"headline\": {\n";
  add_point b ~indent:4 ~label:"baseline" r.baseline;
  add ",\n";
  add_point b ~indent:4 ~label:"batched" r.batched;
  add ",\n";
  add "    \"speedup\": %.3f\n"
    (r.batched.res.Cluster.throughput /. r.baseline.res.Cluster.throughput);
  add "  },\n";
  add "  \"grid\": [\n";
  List.iteri
    (fun i p ->
      add "    {\n";
      add_point b ~indent:6 ~label:"point" p;
      add "\n    }%s\n" (if i = List.length r.grid - 1 then "" else ","))
    r.grid;
  add "  ],\n";
  (match r.fault with
  | None -> add "  \"fault\": null,\n"
  | Some p ->
    add "  \"fault\": {\n";
    add_point b ~indent:4 ~label:"run" p;
    add ",\n";
    (match p.res.Cluster.outage with
    | None -> add "    \"outage\": null,\n"
    | Some o ->
      add "    \"outage\": {\n";
      add "      \"crashed_at\": %d,\n" o.Cluster.crashed_at;
      add "      \"recovered_at\": %d,\n" o.recovered_at;
      add "      \"outage_cycles\": %d\n" o.outage_cycles;
      add "    },\n");
    add "    \"window_cycles\": %d,\n" p.cfg.Cluster.window_cycles;
    add "    \"timeline\": [\n";
    let nt = Array.length p.res.Cluster.timeline in
    Array.iteri
      (fun w row ->
        add "      [%s]%s\n"
          (String.concat ", " (Array.to_list (Array.map string_of_int row)))
          (if w = nt - 1 then "" else ","))
      p.res.Cluster.timeline;
    add "    ]\n";
    add "  },\n");
  add "  \"determinism\": {\n";
  add "    \"audits\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") r.audits));
  add "    \"equal\": %b\n" r.determinism_ok;
  add "  }\n}\n";
  Buffer.contents b

(* Same validation discipline as {!Sj_bench.Report.check_string}: no
   JSON library in the tree, so check nesting balance outside strings,
   required keys, and refuse any recorded divergence. *)
let check_string s =
  let depth = ref 0 and in_str = ref false and ok = ref true in
  String.iteri
    (fun i ch ->
      if !in_str then begin
        if ch = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  if !depth <> 0 || !in_str then ok := false;
  let required =
    [
      Printf.sprintf "\"schema\": \"%s\"" schema;
      "\"host\"";
      "\"cores\"";
      "\"ocaml_version\"";
      "\"jobs\"";
      "\"headline\"";
      "\"baseline\"";
      "\"batched\"";
      "\"speedup\"";
      "\"grid\"";
      "\"fault\"";
      "\"throughput_rps\"";
      "\"p50_cycles\"";
      "\"p99_cycles\"";
      "\"p999_cycles\"";
      "\"simulated\"";
      "\"determinism\"";
    ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let errors = ref [] in
  List.iter
    (fun key ->
      if not (contains key) then
        errors := Printf.sprintf "missing key %s" key :: !errors)
    required;
  if contains "\"equal\": false" then
    errors := "report records a determinism divergence" :: !errors;
  if not !ok then errors := "unbalanced JSON nesting" :: !errors;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let check_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  check_string s
