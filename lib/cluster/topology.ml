(* Cluster placement and key routing: pure arithmetic, no machine
   state. Shards are laid round-robin over the machines; clients hash
   keys to shards with FNV-1a, the classic Redis-cluster-style slot
   function (deterministic, architecture-independent, no dependence on
   OCaml's polymorphic hash). *)

type t = {
  machines : int;
  shards : int;
  shard_machine : int array; (* shard -> machine index *)
}

let make ~machines ~shards =
  if machines < 1 then invalid_arg "Topology.make: machines < 1";
  if shards < 1 then invalid_arg "Topology.make: shards < 1";
  { machines; shards; shard_machine = Array.init shards (fun s -> s mod machines) }

let machines t = t.machines
let shards t = t.shards
let machine_of_shard t s = t.shard_machine.(s)

let shards_on t m =
  let out = ref [] in
  for s = t.shards - 1 downto 0 do
    if t.shard_machine.(s) = m then out := s :: !out
  done;
  !out

(* FNV-1a over the key bytes, folded into [0, shards). The 64-bit
   primes keep the avalanche good enough that uniform key strings land
   uniformly on shards (test_cluster holds the balance). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let hash_key key =
  let h = ref fnv_offset in
  String.iter
    (fun ch ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) fnv_prime)
    key;
  (* Fold to a non-negative OCaml int (to_int truncates to 63 bits, so
     mask the sign rather than shifting — a single shift still
     overflows the native int). *)
  Int64.to_int !h land max_int

let shard_of_key t key = hash_key key mod t.shards

(* Clients are spread round-robin over the machines: client [j]'s
   requests enter the fabric at machine [j mod machines]'s edge core. *)
let machine_of_client t j = j mod t.machines
