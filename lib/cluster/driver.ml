(* The `bench cluster` / `sjctl cluster` driver: one entry point that
   runs the headline pair, the sweep grid, the fault composition, and
   the determinism audits, and assembles the Cluster_report. Shared by
   bench/clusterbench.ml and bin/sjctl.ml so the two front-ends cannot
   drift: they differ only in argument parsing and table printing.

   Determinism is audited here, not assumed: the audit config is run
   once as reference and re-run under every host-side condition that
   must not leak into simulated results (plain rerun, tracing on, empty
   fault plan installed, inside a domain pool). Any fingerprint
   mismatch is reported as a divergence; callers exit 2 without
   writing a report. *)

module Par = Sj_util.Par
module Size = Sj_util.Size

type outcome = {
  report : Cluster_report.t;
  divergences : string list;  (* empty iff report.determinism_ok *)
}

(* Headline scale: full mode is the million-client storm (the number
   the ISSUE is named after); quick mode keeps the same shape at a
   few-second size for CI and runtest smoke. Both compare batch=1/
   pipeline=1 (every request its own ring crossing and switch) against
   the batched+pipelined path at identical scale. *)
let headline_cfg ~quick =
  if quick then
    {
      Cluster.default with
      clients = 5_000;
      requests_per_client = 2;
      window_cycles = 2_000_000;
    }
  else
    {
      Cluster.default with
      clients = 1_000_000;
      requests_per_client = 2;
      keys_per_shard = 2_048;
      store_size = Size.mib 32;
      window_cycles = 50_000_000;
    }

(* Grid points are smaller than the headline — the sweep is about the
   *shape* of the surface (where batching stops paying, what pipelining
   buys, Dragonfly vs Barrelfish), not peak scale. *)
let grid_cfg ~quick =
  if quick then
    {
      Cluster.default with
      clients = 1_500;
      requests_per_client = 2;
      keys_per_shard = 128;
      store_size = Size.mib 8;
      window_cycles = 1_000_000;
    }
  else
    {
      Cluster.default with
      clients = 20_000;
      requests_per_client = 2;
      window_cycles = 5_000_000;
    }

let grid_axes ~quick =
  if quick then
    ([ 4; 8 ], [ 1; 16 ], [ 2 ], [ Sj_core.Api.Dragonfly; Sj_core.Api.Barrelfish ])
  else
    ( [ 4; 8; 16 ],
      [ 1; 4; 16 ],
      [ 1; 4 ],
      [ Sj_core.Api.Dragonfly; Sj_core.Api.Barrelfish ] )

(* Fault composition: kill shard 1's server mid-storm (it dies holding
   the store's lock, mid-burst), respawn after the delay, and let the
   timeline show the outage against the other shards' steady service.
   kill_at and respawn_delay are sized so crash and full recovery both
   land well inside the run. *)
let fault_cfg ~quick =
  if quick then
    {
      (grid_cfg ~quick) with
      Cluster.clients = 1_500;
      window_cycles = 400_000;
      fault =
        Some
          { Cluster.kill_at = 400_000; victim_shard = 1; respawn_delay = 1_500_000 };
    }
  else
    {
      (grid_cfg ~quick) with
      Cluster.window_cycles = 2_000_000;
      fault =
        Some
          {
            Cluster.kill_at = 6_000_000;
            victim_shard = 1;
            respawn_delay = 8_000_000;
          };
    }

let fp_equal (a : Cluster.result) (b : Cluster.result) =
  a.Cluster.fingerprint = b.Cluster.fingerprint

let run ~quick ~jobs ?(progress = fun _ -> ()) () =
  let point cfg = { Cluster_report.cfg; res = Cluster.run cfg } in
  let hcfg = headline_cfg ~quick in
  progress "headline: single-op baseline (batch=1, pipeline=1)";
  let baseline = point { hcfg with Cluster.batch = 1; pipeline = 1 } in
  progress "headline: batched + pipelined, same scale";
  let batched = point hcfg in
  let gcfg = grid_cfg ~quick in
  let shards_l, batch_l, pipe_l, backends = grid_axes ~quick in
  let cfgs =
    List.concat_map
      (fun shards ->
        List.concat_map
          (fun batch ->
            List.concat_map
              (fun pipeline ->
                List.map
                  (fun backend ->
                    { gcfg with Cluster.shards; batch; pipeline; backend })
                  backends)
              pipe_l)
          batch_l)
      shards_l
  in
  progress
    (Printf.sprintf "grid: %d points (shards x batch x pipeline x backend)"
       (List.length cfgs));
  (* Each grid point simulates its own machines, so fanning points
     across domains changes only the wall clock; results are assembled
     in config order either way. *)
  let grid =
    if jobs <= 1 then List.map point cfgs
    else
      Par.with_pool ~size:jobs (fun pool ->
          List.map2
            (fun cfg res -> { Cluster_report.cfg; res })
            cfgs
            (Par.map_list pool Cluster.run cfgs))
  in
  progress "fault: kill shard 1 mid-storm, watch the timeline";
  let fault = point (fault_cfg ~quick) in
  progress "determinism audits";
  let acfg = gcfg in
  let reference = Cluster.run acfg in
  let divergences = ref [] in
  let audit name r =
    if not (fp_equal reference r) then divergences := name :: !divergences
  in
  audit "rerun" (Cluster.run acfg);
  audit "trace-on" (Sj_obs.Recorder.with_tracing true (fun () -> Cluster.run acfg));
  audit "empty-fault-plan"
    (Sj_fault.Injector.with_plan [] (fun () -> Cluster.run acfg));
  Par.with_pool ~size:(max 2 jobs) (fun pool ->
      List.iter
        (fun r -> audit "domains" r)
        (Par.map_list pool Cluster.run [ acfg; acfg ]));
  let fault_rerun = Cluster.run (fault_cfg ~quick) in
  if not (fp_equal fault.Cluster_report.res fault_rerun) then
    divergences := "fault-rerun" :: !divergences;
  let report =
    {
      Cluster_report.quick;
      jobs;
      cores = Domain.recommended_domain_count ();
      ocaml_version = Sys.ocaml_version;
      baseline;
      batched;
      grid;
      fault = Some fault;
      determinism_ok = !divergences = [];
      audits = [ "rerun"; "trace-on"; "empty-fault-plan"; "domains"; "fault-rerun" ];
    }
  in
  { report; divergences = List.rev !divergences }
