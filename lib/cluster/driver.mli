(** Shared driver behind [bench cluster] and [sjctl cluster].

    Runs the headline single-op-vs-batched pair, the
    shards x batch x pipeline x backend sweep grid, the
    shard-crash fault composition, and the determinism audits
    (rerun, tracing on, empty fault plan, domain pool, fault rerun),
    then assembles the {!Cluster_report.t}. The two front-ends differ
    only in argument parsing and printing. *)

type outcome = {
  report : Cluster_report.t;
  divergences : string list;
      (** failed audits, in run order; empty iff
          [report.determinism_ok]. Callers must exit 2 without writing
          a report when non-empty. *)
}

val headline_cfg : quick:bool -> Cluster.config
(** Million simulated clients in full mode; CI-sized in quick mode. *)

val grid_cfg : quick:bool -> Cluster.config
val fault_cfg : quick:bool -> Cluster.config

val run :
  quick:bool -> jobs:int -> ?progress:(string -> unit) -> unit -> outcome
(** [jobs] > 1 fans grid points across a domain pool (wall clock only;
    point results are identical and assembled in config order).
    [progress] is called with a one-line note as each section starts. *)
