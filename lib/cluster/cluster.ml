(* Sharded multi-machine RedisJMP cluster (ROADMAP item 1).

   K shard servers are placed round-robin over up to three simulated
   machines (M1/M2/M3). Each shard is a full RedisJMP store — a
   lockable segment inside named VASes — whose server process executes
   commands by jumping into the store's address space. Clients are NOT
   processes: a run simulates hundreds of thousands to millions of them
   as lightweight discrete-event state machines (a few ints each) that
   enter the fabric at their home machine's edge core. Requests route
   by key hash ({!Topology.shard_of_key}), travel over [Sj_ipc] rings —
   [Urpc] cache-line channels intra-machine, [Msg_channel] across
   machines — and the hot path is batched and pipelined:

   - clients keep up to [pipeline] requests outstanding;
   - the edge coalesces up to [batch] requests per (machine, shard)
     lane into one ring crossing (a linger timer flushes partial
     batches);
   - the server drains whole ring bursts and executes them under ONE
     vas_switch / segment-lock admission ([Redisjmp.execute_batch]),
     streaming replies back without per-op round trips. With
     [batch = 1] the server instead runs the single-op baseline: one
     [Redisjmp.execute] — its own switch, lock and full dispatch
     overhead — per request, which is the comparison point for the
     batching win.

   Everything observable emerges from mechanisms: switch and lock
   costs from the kernel layer, transfer costs from the ring/fabric
   models, queueing from the DES resources. The run is a deterministic
   function of the config — one event timeline, seeded pure
   per-request randomness, no host state — so fingerprints are
   byte-identical across -j settings, trace on/off, and an attached
   empty fault plan.

   The DES timeline is measured in reference cycles at the base
   2.5 GHz clock (machines' own cost models still price their local
   work); throughput converts through that clock. *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Cost_model = Sj_machine.Cost_model
module Process = Sj_kernel.Process
module Api = Sj_core.Api
module Registry = Sj_core.Registry
module Segment = Sj_core.Segment
module Engine = Sj_des.Engine
module Resource = Sj_des.Resource
module Urpc = Sj_ipc.Urpc
module Msg_channel = Sj_ipc.Msg_channel
module Resp = Sj_kvstore.Resp
module Redisjmp = Sj_kvstore.Redisjmp
module Hist = Sj_obs.Hist
module Plan = Sj_fault.Plan
module Injector = Sj_fault.Injector

(* ---------------- configuration ---------------- *)

type fault_plan = {
  kill_at : int;  (** engine time at which the injector is armed *)
  victim_shard : int;
  respawn_delay : int;  (** crash -> standby server ready, cycles *)
}

type config = {
  machines : int;  (** 1..3 -> M1, M2, M3 *)
  shards : int;
  clients : int;
  requests_per_client : int;
  batch : int;  (** max requests coalesced per ring crossing; 1 = single-op baseline *)
  pipeline : int;  (** outstanding requests per client *)
  linger_cycles : int;  (** partial-batch flush timer *)
  set_fraction : float;
  value_size : int;
  keys_per_shard : int;
  store_size : int;
  backend : Api.backend;
  tags : bool;
  window_cycles : int;  (** availability-timeline bucket width *)
  fault : fault_plan option;
  seed : int;
}

let default =
  {
    machines = 3;
    shards = 8;
    clients = 10_000;
    requests_per_client = 4;
    batch = 16;
    pipeline = 2;
    linger_cycles = 20_000;
    set_fraction = 0.1;
    value_size = 16;
    keys_per_shard = 512;
    store_size = Size.mib 16;
    backend = Api.Dragonfly;
    tags = true;
    window_cycles = 20_000_000;
    fault = None;
    seed = 20_16;
  }

type outage = {
  crashed_at : int;  (** engine time the lock holder died *)
  recovered_at : int;  (** engine time the standby finished taking over *)
  outage_cycles : int;
}

type result = {
  requests : int;
  sets : int;
  gets : int;
  duration_cycles : int;
  seconds : float;
  throughput : float;
  p50 : int;
  p99 : int;
  p999 : int;
  mean_latency : float;
  batches : int;
  avg_batch : float;
  switches : int;
  ring_stalls : int;
  server_backlog_peak : int;
  edge_backlog_peak : int;
  shard_served : int array;
  timeline : int array array;  (** window -> shard -> completions *)
  outage : outage option;
  crashed : bool;
  fingerprint : (string * int) list;
}

(* ---------------- flat int-pair queue ----------------

   Egress and in-flight bookkeeping store (rid, issue_time) pairs for
   up to clients x pipeline requests at once; a pointer-free growable
   ring keeps that off the GC entirely (64 MB of live tuples at the
   million-client scale would otherwise dominate host time). *)

module Iq = struct
  type t = { mutable buf : int array; mutable head : int; mutable len : int }

  let create () = { buf = Array.make 128 0; head = 0; len = 0 }
  let length2 q = q.len / 2

  let grow q ~need =
    let cap = ref (Array.length q.buf) in
    while need > !cap do
      cap := !cap * 2
    done;
    let nb = Array.make !cap 0 in
    let mask = Array.length q.buf - 1 in
    for i = 0 to q.len - 1 do
      nb.(i) <- q.buf.((q.head + i) land mask)
    done;
    q.buf <- nb;
    q.head <- 0

  let push2 q a b =
    if q.len + 2 > Array.length q.buf then grow q ~need:(q.len + 2);
    let mask = Array.length q.buf - 1 in
    q.buf.((q.head + q.len) land mask) <- a;
    q.buf.((q.head + q.len + 1) land mask) <- b;
    q.len <- q.len + 2

  let peek2 q =
    let mask = Array.length q.buf - 1 in
    (q.buf.(q.head), q.buf.((q.head + 1) land mask))

  let drop2 q =
    q.head <- (q.head + 2) land (Array.length q.buf - 1);
    q.len <- q.len - 2

  let pop2 q =
    let p = peek2 q in
    drop2 q;
    p

  (* Undo a pop: used to put entries a partial burst could not send
     back at the front (callers restore original order by pushing the
     rejected tail back last-entry-first). *)
  let push_front2 q a b =
    if q.len + 2 > Array.length q.buf then grow q ~need:(q.len + 2);
    let mask = Array.length q.buf - 1 in
    q.head <- (q.head - 2) land mask;
    q.buf.(q.head) <- a;
    q.buf.((q.head + 1) land mask) <- b;
    q.len <- q.len + 2

  (* dst := src ++ dst, clearing src — the retransmit path restoring
     FIFO order after a connection reset (src holds the older,
     sent-but-unacknowledged entries). *)
  let prepend_into ~dst ~src =
    if src.len > 0 then begin
      let total = src.len + dst.len in
      let cap = ref (Array.length dst.buf) in
      while total > !cap do
        cap := !cap * 2
      done;
      let nb = Array.make !cap 0 in
      let smask = Array.length src.buf - 1 in
      for i = 0 to src.len - 1 do
        nb.(i) <- src.buf.((src.head + i) land smask)
      done;
      let dmask = Array.length dst.buf - 1 in
      for i = 0 to dst.len - 1 do
        nb.(src.len + i) <- dst.buf.((dst.head + i) land dmask)
      done;
      dst.buf <- nb;
      dst.head <- 0;
      dst.len <- total;
      src.head <- 0;
      src.len <- 0
    end
end

(* ---------------- per-request pure randomness ----------------

   One splitmix64 finalizer over (seed, rid, salt) replaces per-client
   generator state: a million clients carry no RNG objects at all, and
   a request's key and kind can be recomputed anywhere (the flush path
   re-derives the command rather than buffering encoded bytes). *)

let mix64 (x : int64) =
  let open Int64 in
  let x = logxor x (shift_right_logical x 30) in
  let x = mul x 0xbf58476d1ce4e5b9L in
  let x = logxor x (shift_right_logical x 27) in
  let x = mul x 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let mix3 ~seed ~rid ~salt =
  let open Int64 in
  let z =
    add
      (mul (of_int ((rid * 4) + salt + 1)) 0x9e3779b97f4a7c15L)
      (mul (of_int seed) 0xd1342543de82ef95L)
  in
  to_int (mix64 z) land Stdlib.max_int

(* ---------------- channels ---------------- *)

type chan = Local of Urpc.t | Remote of Msg_channel.t

let ch_send_burst ch ~from ps =
  match ch with
  | Local u -> Urpc.send_burst u ~from ps
  | Remote m -> Msg_channel.send_burst m ~from ps

let ch_drain ch ~at ?max () =
  match ch with
  | Local u -> Urpc.drain u ~at ?max ()
  | Remote m -> Msg_channel.drain m ~at ?max ()

let ch_pending ch ~at =
  match ch with
  | Local u -> Urpc.pending u ~at
  | Remote m -> Msg_channel.pending m ~at

(* ---------------- the run ---------------- *)

let platform_of_machine = [| Platform.m1; Platform.m2; Platform.m3 |]

type lane = {
  chan : chan;
  egress : Iq.t;  (* queued, not yet on the ring *)
  inflight : Iq.t;  (* on the ring / at the server, awaiting reply *)
  mutable timer_armed : bool;
}

type shard_srv = {
  s_machine : int;
  s_core : Core.core;
  s_res : Resource.Cores.t;
  store : Redisjmp.t;
  mutable s_client : Redisjmp.client;
  mutable s_pid : int;
  mutable busy : bool;
  mutable again : bool;
  mutable alive : bool;
}

let fail_config msg = failwith ("Cluster.run: " ^ msg)

let run cfg =
  if cfg.machines < 1 || cfg.machines > 3 then fail_config "machines must be 1..3";
  if cfg.shards < 1 then fail_config "shards must be >= 1";
  if cfg.batch < 1 then fail_config "batch must be >= 1";
  if cfg.pipeline < 1 then fail_config "pipeline must be >= 1";
  (match cfg.fault with
  | Some f when f.victim_shard < 0 || f.victim_shard >= cfg.shards ->
    fail_config "victim_shard out of range"
  | _ -> ());
  let topo = Topology.make ~machines:cfg.machines ~shards:cfg.shards in
  let machines =
    Array.init cfg.machines (fun i -> Machine.create platform_of_machine.(i))
  in
  let systems = Array.map (fun m -> Api.boot ~backend:cfg.backend m) machines in
  let boot_ctxs =
    Array.init cfg.machines (fun i ->
        let proc = Process.create ~name:(Printf.sprintf "boot%d" i) machines.(i) in
        Api.context systems.(i) proc (Machine.core machines.(i) 0))
  in
  (* Server core c on its machine = position in the machine's shard
     list; the edge core sits just past the machine's last server. *)
  let servers_on = Array.make cfg.machines 0 in
  let server_core_idx =
    Array.init cfg.shards (fun s ->
        let m = Topology.machine_of_shard topo s in
        let c = servers_on.(m) in
        servers_on.(m) <- c + 1;
        c)
  in
  Array.iteri
    (fun m n ->
      if n + 1 > Platform.total_cores platform_of_machine.(m) then
        fail_config "more shards than cores on a machine")
    servers_on;
  let edge_cores =
    Array.init cfg.machines (fun m ->
        Machine.core machines.(m) servers_on.(m))
  in
  (* DES world — created before the shards so each server gets its
     dedicated unit-capacity core resource at construction. *)
  let eng = Engine.create () in
  (* Shard stores + server processes. *)
  let mk_server_client s store =
    let m = Topology.machine_of_shard topo s in
    let proc =
      Process.create ~name:(Printf.sprintf "shard%d.server" s) machines.(m)
    in
    let core = Machine.core machines.(m) server_core_idx.(s) in
    let ctx = Api.context systems.(m) proc core in
    (Process.pid proc, Redisjmp.connect store ctx ())
  in
  let shards =
    Array.init cfg.shards (fun s ->
        let m = Topology.machine_of_shard topo s in
        let bctx = boot_ctxs.(m) in
        let name = Printf.sprintf "shard%d" s in
        let store = Redisjmp.init bctx ~name ~size:cfg.store_size in
        if cfg.tags then begin
          Api.vas_ctl bctx (`Request_tag (Api.vas_find bctx ~name:(name ^ ".rw")));
          Api.vas_ctl bctx (`Request_tag (Api.vas_find bctx ~name:(name ^ ".ro")))
        end;
        let pid, client = mk_server_client s store in
        {
          s_machine = m;
          s_core = Machine.core machines.(m) server_core_idx.(s);
          s_res = Resource.Cores.create eng ~n:1;
          store;
          s_client = client;
          s_pid = pid;
          busy = false;
          again = false;
          alive = true;
        })
  in
  (* Key pool: keys hash to shards; populate each store with its own
     keys through its server (reset stats afterwards). *)
  let total_keys = cfg.shards * cfg.keys_per_shard in
  let keys = Array.init total_keys (Printf.sprintf "key:%08d") in
  let key_shard = Array.map (Topology.shard_of_key topo) keys in
  let value = Bytes.make cfg.value_size 'v' in
  Array.iteri
    (fun i key -> Redisjmp.set shards.(key_shard.(i)).s_client key value)
    keys;
  Array.iter (fun sys -> Registry.reset_stats (Api.registry sys)) systems;
  Array.iter
    (fun m ->
      Array.iter (fun c -> Sj_tlb.Tlb.reset_stats (Core.tlb c)) (Machine.cores m))
    machines;
  let edge_res =
    Array.init cfg.machines (fun _ -> Resource.Cores.create eng ~n:1)
  in
  let ring_slots = max 64 (4 * cfg.batch) in
  let lanes =
    Array.init cfg.machines (fun m ->
        Array.init cfg.shards (fun s ->
            let sm = Topology.machine_of_shard topo s in
            let edge = edge_cores.(m) in
            let sc = shards.(s).s_core in
            let chan =
              if sm = m then
                Local (Urpc.create machines.(m) ~a:edge ~b:sc ~slots:ring_slots ())
              else
                Remote
                  (Msg_channel.create_cross
                     ~master:(machines.(m), edge)
                     ~slave:(machines.(sm), sc)
                     ~slots:ring_slots ())
            in
            { chan; egress = Iq.create (); inflight = Iq.create (); timer_armed = false }))
  in
  (* Per-request derivations (pure in (seed, rid)). *)
  let rpc = cfg.requests_per_client in
  let set_cut =
    (* compare 24 mixed bits against the fraction, exactly *)
    int_of_float (cfg.set_fraction *. 16_777_216.0)
  in
  let key_of_rid rid = mix3 ~seed:cfg.seed ~rid ~salt:0 mod total_keys in
  let is_set_rid rid = mix3 ~seed:cfg.seed ~rid ~salt:1 land 0xFFFFFF < set_cut in
  let command_of rid =
    let k = keys.(key_of_rid rid) in
    if is_set_rid rid then Resp.Set (k, value) else Resp.Get k
  in
  let shard_of_rid rid = key_shard.(key_of_rid rid) in
  (* Client state: structure-of-arrays, two ints per client. *)
  let issued = Array.make cfg.clients 0 in
  let outstanding = Array.make cfg.clients 0 in
  (* Accounting. *)
  let total = cfg.clients * rpc in
  let completed = ref 0 and sets = ref 0 and gets = ref 0 in
  let batches = ref 0 and batched_reqs = ref 0 and ring_stalls = ref 0 in
  let lat = Hist.create () in
  let lat_sum = ref 0 in
  let shard_served = Array.make cfg.shards 0 in
  let timeline = ref (Array.make 0 [||]) in
  let window_hit w s =
    let tl = !timeline in
    let n = Array.length tl in
    if w >= n then begin
      let nt = Array.make (max (w + 1) (max 8 (2 * n))) [||] in
      Array.blit tl 0 nt 0 n;
      for i = n to Array.length nt - 1 do
        nt.(i) <- Array.make cfg.shards 0
      done;
      timeline := nt
    end;
    !timeline.(w).(s) <- !timeline.(w).(s) + 1
  in
  let crashed = ref false in
  let crashed_at = ref 0 and recovered_at = ref 0 in

  (* --- edge: flush one lane (up to [batch] requests per crossing) --- *)
  let rec flush m s =
    let lane = lanes.(m).(s) in
    if Iq.length2 lane.egress > 0 then begin
      let edge = edge_cores.(m) in
      let t0 = Core.cycles edge in
      (* One ring crossing: marshal up to [batch] requests (bounded by
         the space the producer's poll shows) and push them as a single
         burst — lines back-to-back, one doorbell across machines. *)
      let space = ring_slots - ch_pending lane.chan ~at:shards.(s).s_core in
      let k = min cfg.batch (min space (Iq.length2 lane.egress)) in
      if k < min cfg.batch (Iq.length2 lane.egress) then incr ring_stalls;
      let took = Array.make (max 1 (2 * k)) 0 in
      let payloads = ref [] in
      for i = 0 to k - 1 do
        let rid, ti = Iq.pop2 lane.egress in
        took.(2 * i) <- rid;
        took.((2 * i) + 1) <- ti;
        let p = Resp.encode_command (command_of rid) in
        Core.charge edge (Resp.parse_cycles ~len:(Bytes.length p));
        payloads := p :: !payloads
      done;
      let sent = ch_send_burst lane.chan ~from:edge (List.rev !payloads) in
      for i = 0 to sent - 1 do
        Iq.push2 lane.inflight took.(2 * i) took.((2 * i) + 1)
      done;
      for i = k - 1 downto sent do
        Iq.push_front2 lane.egress took.(2 * i) took.((2 * i) + 1)
      done;
      let delta = Core.cycles edge - t0 in
      if sent > 0 then
        Resource.Cores.exec edge_res.(m) ~cycles:delta (fun () -> wake s)
      else if delta > 0 then
        Resource.Cores.exec edge_res.(m) ~cycles:delta (fun () -> ());
      (* Whatever could not go out this crossing (over-batch backlog or
         ring backpressure) retries on the linger timer. *)
      if Iq.length2 lane.egress > 0 && not lane.timer_armed then begin
        lane.timer_armed <- true;
        Engine.schedule_after eng ~delay:cfg.linger_cycles (fun () ->
            lane.timer_armed <- false;
            flush m s)
      end
    end

  (* --- server: drain bursts, execute under one switch, reply --- *)
  and wake s =
    let srv = shards.(s) in
    if not srv.alive then ()
    else if srv.busy then srv.again <- true
    else begin
      srv.busy <- true;
      serve s
    end

  and serve s =
    let srv = shards.(s) in
    let core = srv.s_core in
    let t0 = Core.cycles core in
    (* Drain up to [batch] requests per lane this burst. *)
    let cmds = ref [] and counts = Array.make cfg.machines 0 in
    for m = 0 to cfg.machines - 1 do
      let msgs = ch_drain lanes.(m).(s).chan ~at:core ~max:cfg.batch () in
      counts.(m) <- List.length msgs;
      List.iter
        (fun b ->
          Core.charge core (Resp.parse_cycles ~len:(Bytes.length b));
          match Resp.decode_command b with
          | Ok cmd -> cmds := cmd :: !cmds
          | Error e -> fail_config ("request decode: " ^ e))
        msgs
    done;
    let cmds = Array.of_list (List.rev !cmds) in
    let n = Array.length cmds in
    if n = 0 then begin
      let delta = Core.cycles core - t0 in
      Resource.Cores.exec srv.s_res ~cycles:delta (fun () -> finish_burst s)
    end
    else begin
      match
        (* [batch = 1] is the single-op baseline: each request pays its
           own vas_switch, lock admission and full dispatch overhead.
           Batched mode runs the whole burst under one jump. *)
        if cfg.batch = 1 then
          Ok (Array.map (fun cmd -> Redisjmp.execute srv.s_client cmd) cmds)
        else Ok (Redisjmp.execute_batch srv.s_client cmds)
      with
      | exception Injector.Killed _ ->
        (* The lock holder died mid-burst: crash teardown has already
           reclaimed its locks. The drained requests are lost with it —
           the edges retransmit them to the standby on recovery. *)
        server_crashed s
      | Ok replies ->
        incr batches;
        batched_reqs := !batched_reqs + n;
        (* Stream replies back, one ring crossing per lane. The reply
           ring can always take a full burst: at most one burst is in
           flight per lane (the edge drains it before the server can
           finish another) and rings hold 4x batch. *)
        let idx = ref 0 in
        for m = 0 to cfg.machines - 1 do
          if counts.(m) > 0 then begin
            let ps = ref [] in
            for _ = 1 to counts.(m) do
              ps := Resp.encode_reply replies.(!idx) :: !ps;
              incr idx
            done;
            let sent = ch_send_burst lanes.(m).(s).chan ~from:core (List.rev !ps) in
            if sent <> counts.(m) then fail_config "reply ring overflow"
          end
        done;
        let delta = Core.cycles core - t0 in
        Resource.Cores.exec srv.s_res ~cycles:delta (fun () ->
            for m = 0 to cfg.machines - 1 do
              if counts.(m) > 0 then edge_reply m s
            done;
            finish_burst s)
      | Error _ -> assert false
    end

  and finish_burst s =
    let srv = shards.(s) in
    srv.busy <- false;
    let more = ref srv.again in
    srv.again <- false;
    for m = 0 to cfg.machines - 1 do
      if ch_pending lanes.(m).(s).chan ~at:srv.s_core > 0 then more := true
    done;
    if !more && srv.alive then begin
      srv.busy <- true;
      serve s
    end

  (* --- edge: deliver a burst of replies, complete clients --- *)
  and edge_reply m s =
    let lane = lanes.(m).(s) in
    let edge = edge_cores.(m) in
    let t0 = Core.cycles edge in
    let msgs = ch_drain lane.chan ~at:edge () in
    let finished = ref [] in
    List.iter
      (fun b ->
        Core.charge edge (Resp.parse_cycles ~len:(Bytes.length b));
        let rid, ti = Iq.pop2 lane.inflight in
        finished := (rid, ti) :: !finished)
      msgs;
    let finished = List.rev !finished in
    let delta = Core.cycles edge - t0 in
    Resource.Cores.exec edge_res.(m) ~cycles:delta (fun () ->
        let tnow = Engine.now eng in
        List.iter (fun (rid, ti) -> complete rid ti tnow) finished)

  and complete rid ti tnow =
    incr completed;
    if is_set_rid rid then incr sets else incr gets;
    let lt = tnow - ti in
    Hist.add lat lt;
    lat_sum := !lat_sum + lt;
    let s = shard_of_rid rid in
    shard_served.(s) <- shard_served.(s) + 1;
    window_hit (tnow / cfg.window_cycles) s;
    let j = rid / rpc in
    outstanding.(j) <- outstanding.(j) - 1;
    if issued.(j) < rpc && outstanding.(j) < cfg.pipeline then issue j

  and issue j =
    let rid = (j * rpc) + issued.(j) in
    issued.(j) <- issued.(j) + 1;
    outstanding.(j) <- outstanding.(j) + 1;
    let m = Topology.machine_of_client topo j in
    let s = shard_of_rid rid in
    let lane = lanes.(m).(s) in
    Iq.push2 lane.egress rid (Engine.now eng);
    if Iq.length2 lane.egress >= cfg.batch then flush m s
    else if not lane.timer_armed then begin
      lane.timer_armed <- true;
      Engine.schedule_after eng ~delay:cfg.linger_cycles (fun () ->
          lane.timer_armed <- false;
          flush m s)
    end

  (* --- fault path: kill, retransmit, respawn --- *)
  and server_crashed s =
    let srv = shards.(s) in
    crashed := true;
    crashed_at := Engine.now eng;
    srv.alive <- false;
    srv.busy <- false;
    srv.again <- false;
    let f = match cfg.fault with Some f -> f | None -> assert false in
    Engine.schedule_after eng ~delay:f.respawn_delay (fun () -> respawn s)

  and respawn s =
    let srv = shards.(s) in
    (* The standby process connects to the orphaned store — the address
       space outlived its creator — and the edges treat the outage as a
       connection reset: in-flight ring bytes are dropped, every
       unacknowledged request is requeued IN ORDER ahead of newer
       traffic and retransmitted (at-least-once; GET/SET are
       idempotent). *)
    let pid, client = mk_server_client s srv.store in
    srv.s_pid <- pid;
    srv.s_client <- client;
    srv.alive <- true;
    recovered_at := Engine.now eng;
    for m = 0 to cfg.machines - 1 do
      let lane = lanes.(m).(s) in
      (match lane.chan with
      | Local u -> Urpc.reset u
      | Remote c -> Msg_channel.reset c);
      Iq.prepend_into ~dst:lane.egress ~src:lane.inflight;
      flush m s
    done
  in

  (* Arm the injector at the configured engine time: the victim dies at
     its first syscall issued while holding the data segment's lock. *)
  (match cfg.fault with
  | Some f ->
    Engine.schedule eng ~at:f.kill_at (fun () ->
        let srv = shards.(f.victim_shard) in
        if srv.alive then
          Injector.attach
            (Machine.sim_ctx machines.(srv.s_machine))
            (Injector.create ~seed:cfg.seed
               [
                 Plan.kill_holding_lock ~pid:srv.s_pid
                   ~sid:(Segment.sid (Redisjmp.data_segment srv.store));
               ]))
  | None -> ());

  (* Client ramp: one event per chunk of clients, not one per client —
     a million start closures would dominate the heap for no modelled
     reason. Each client opens its pipeline window on start. *)
  let chunk = 4096 in
  let start_stride = 1_000 in
  let nchunks = (cfg.clients + chunk - 1) / chunk in
  for c = 0 to nchunks - 1 do
    Engine.schedule eng ~at:(c * start_stride) (fun () ->
        let lo = c * chunk and hi = min cfg.clients ((c + 1) * chunk) - 1 in
        for j = lo to hi do
          for _ = 1 to min cfg.pipeline rpc do
            issue j
          done
        done)
  done;
  Engine.run eng;
  if !completed <> total then
    fail_config
      (Printf.sprintf "run did not complete: %d of %d requests served"
         !completed total);

  let duration = Engine.now eng in
  let seconds = Cost_model.cycles_to_seconds Cost_model.m2 duration in
  let switches =
    Array.fold_left
      (fun acc sys -> acc + Registry.switch_count (Api.registry sys))
      0 systems
  in
  let timeline =
    (* trim trailing all-zero windows from over-allocation *)
    let tl = !timeline in
    let last = ref (-1) in
    Array.iteri
      (fun w row -> if Array.exists (fun x -> x > 0) row then last := w)
      tl;
    Array.sub tl 0 (!last + 1)
  in
  let p50 = Hist.quantile lat 0.5
  and p99 = Hist.quantile lat 0.99
  and p999 = Hist.quantile lat 0.999 in
  let mixfold acc x = (acc * 1_000_003) + x land max_int in
  let shard_mix = Array.fold_left mixfold 17 shard_served in
  let timeline_mix =
    Array.fold_left (fun acc row -> Array.fold_left mixfold acc row) 23 timeline
  in
  let fingerprint =
    [
      ("requests", !completed);
      ("sets", !sets);
      ("cycles", duration);
      ("p50", p50);
      ("p99", p99);
      ("p999", p999);
      ("switches", switches);
      ("batches", !batches);
      ("stalls", !ring_stalls);
      ("shard_mix", shard_mix);
      ("timeline_mix", timeline_mix);
      ("crashes", if !crashed then 1 else 0);
    ]
  in
  {
    requests = !completed;
    sets = !sets;
    gets = !gets;
    duration_cycles = duration;
    seconds;
    throughput = float_of_int !completed /. seconds;
    p50;
    p99;
    p999;
    mean_latency = float_of_int !lat_sum /. float_of_int (max 1 !completed);
    batches = !batches;
    avg_batch = float_of_int !batched_reqs /. float_of_int (max 1 !batches);
    switches;
    ring_stalls = !ring_stalls;
    server_backlog_peak =
      Array.fold_left
        (fun acc srv -> max acc (Resource.Cores.queued_peak srv.s_res))
        0 shards;
    edge_backlog_peak =
      Array.fold_left
        (fun acc r -> max acc (Resource.Cores.queued_peak r))
        0 edge_res;
    shard_served;
    timeline;
    outage =
      (if !crashed then
         Some
           {
             crashed_at = !crashed_at;
             recovered_at = !recovered_at;
             outage_cycles = !recovered_at - !crashed_at;
           }
       else None);
    crashed = !crashed;
    fingerprint;
  }
