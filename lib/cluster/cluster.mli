(** Sharded multi-machine RedisJMP cluster (ROADMAP item 1).

    K shard servers placed round-robin over up to three simulated
    machines; clients are lightweight discrete-event state machines (a
    few ints each — a run can carry a million of them) that route
    requests by key hash through their home machine's edge core over
    [Sj_ipc] channels: {!Sj_ipc.Urpc} cache-line rings intra-machine,
    {!Sj_ipc.Msg_channel} across machines.

    The hot path is batched and pipelined. Each client keeps up to
    [pipeline] requests outstanding; the edge coalesces up to [batch]
    requests per (machine, shard) lane into one ring crossing (a
    linger timer flushes partial batches); the server drains whole
    bursts and executes them under a single vas_switch / segment-lock
    admission ({!Sj_kvstore.Redisjmp.execute_batch}), streaming replies
    back without per-op round trips. [batch = 1] selects the single-op
    baseline: one {!Sj_kvstore.Redisjmp.execute} — own switch, lock,
    and full dispatch overhead — per request.

    A run is a deterministic function of its config: fingerprints are
    byte-identical across host parallelism, trace on/off, and attached
    empty fault plans. The optional fault plan kills one shard's lock
    holder mid-storm ({!Sj_fault.Plan.kill_holding_lock}); crash
    teardown reclaims the segment lock, a standby server reconnects
    after [respawn_delay], and the edges retransmit unacknowledged
    requests in order (at-least-once; GET/SET are idempotent). The
    per-window completion [timeline] charts cluster-wide availability
    through the outage. *)

type fault_plan = {
  kill_at : int;  (** engine time at which the injector is armed *)
  victim_shard : int;
  respawn_delay : int;  (** crash -> standby server ready, cycles *)
}

type config = {
  machines : int;  (** 1..3 -> M1, M2, M3 *)
  shards : int;
  clients : int;
  requests_per_client : int;
  batch : int;
      (** max requests coalesced per ring crossing; 1 = single-op baseline *)
  pipeline : int;  (** outstanding requests per client *)
  linger_cycles : int;  (** partial-batch flush timer *)
  set_fraction : float;
  value_size : int;
  keys_per_shard : int;
  store_size : int;
  backend : Sj_core.Api.backend;
  tags : bool;
  window_cycles : int;  (** availability-timeline bucket width *)
  fault : fault_plan option;
  seed : int;
}

val default : config

type outage = {
  crashed_at : int;  (** engine time the lock holder died *)
  recovered_at : int;  (** engine time the standby finished taking over *)
  outage_cycles : int;
}

type result = {
  requests : int;
  sets : int;
  gets : int;
  duration_cycles : int;  (** engine time at last completion *)
  seconds : float;  (** at the 2.5 GHz reference clock *)
  throughput : float;  (** requests per reference second *)
  p50 : int;  (** request latency quantiles, engine cycles *)
  p99 : int;
  p999 : int;
  mean_latency : float;
  batches : int;  (** server bursts executed (batched mode) *)
  avg_batch : float;
  switches : int;  (** vas switches, summed over machines *)
  ring_stalls : int;  (** flushes that hit ring backpressure *)
  server_backlog_peak : int;
      (** deepest any shard core's exec FIFO got
          ({!Sj_des.Resource.Cores.queued_peak}) *)
  edge_backlog_peak : int;  (** same, over the per-machine edge cores *)
  shard_served : int array;
  timeline : int array array;  (** window -> shard -> completions *)
  outage : outage option;
  crashed : bool;
  fingerprint : (string * int) list;
      (** integers only, byte-identical across -j / trace / empty-plan *)
}

val run : config -> result
(** Build the machines, stores and channels, simulate the full
    closed-loop request storm to completion, and report. Raises
    [Failure] on nonsensical configs (shards that outnumber cores,
    out-of-range victim, machines outside 1..3). *)
