(** Cluster placement and key routing (pure, deterministic).

    K shards laid round-robin across M simulated machines; keys route
    to shards by FNV-1a hash (no dependence on the polymorphic hash),
    clients enter at their home machine's edge core. *)

type t

val make : machines:int -> shards:int -> t
val machines : t -> int
val shards : t -> int

val machine_of_shard : t -> int -> int
val shards_on : t -> int -> int list
(** Shards placed on machine [m], ascending. *)

val hash_key : string -> int
(** FNV-1a, folded to a non-negative int. *)

val shard_of_key : t -> string -> int
val machine_of_client : t -> int -> int
