open Sj_util
module Phys_mem = Sj_mem.Phys_mem
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Tlb = Sj_tlb.Tlb
module Pkey = Sj_paging.Pkey

type access = Read | Write

exception Page_fault of { va : int; access : access }
exception Protection_fault of { va : int; access : access }

exception Key_fault of { va : int; access : access }
(* Paging protections admit the access but the core's protection-key
   register denies the page's key. Deliberately NOT caught by the
   [translate] retry loop: the fault handler repairs *mappings* (COW
   splits), and a key denial is a property of the register, which no
   mapping repair can change. *)

exception No_page_table

type core_state = {
  id : int;
  socket : int;
  machine : t;
  mutable cycles : int;
  tlb : Tlb.t;
  l1 : Cache.t;
  mutable pt : Page_table.t option;
  mutable tag : int;
  (* Protection-key permission register (PKRU). 0 permits every key, so
     key-free workloads never observe it; a pkey switch rewrites it
     without touching [pt], [tag], the TLB or any cache. *)
  mutable pkru : int;
  mutable fault_handler : (va:int -> access:access -> bool) option;
  (* Per-core paging-structure caches, one slot per (low bits of) ASID
     tag so they stay warm across vas_switch: switching away and back
     finds the previous address space's interior-node pointers intact.
     Each slot self-validates against the owning table's identity and
     the Phys_mem structural epoch (see Page_table.walk_cached), so no
     reset on CR3 load is needed for correctness. *)
  wcaches : Page_table.walk_cache array;
  scratch : Bytes.t; (* reusable memcpy bounce buffer (fast path) *)
}

and t = {
  platform : Platform.t;
  mem : Phys_mem.t;
  cost : Cost_model.t;
  llcs : Cache.t array; (* one per socket *)
  mutable core_list : core_state array;
  (* Per-simulation world state: id generators and the layout cursor
     for everything built on this machine. Scoped here (not globally)
     so machines are independent of each other — bit-identical results
     no matter how many machines exist or which domain runs them. *)
  ctx : Sim_ctx.t;
  (* Host-side translation/bulk fast path. Semantics-preserving: the
     simulated cycles, TLB/page-table stats and data results are
     bit-identical with [fast] on or off (test/test_fastpath.ml is the
     oracle); only host wall-clock changes. *)
  fast : bool;
}

(* Default for machines whose creator does not pass [?fast] — lets the
   bench harness drive whole workloads (which create their own
   machines) down either path. Domain-local: each domain carries its
   own default, so parallel tasks control their mode independently
   (a fresh domain starts at [true]; tasks needing a specific mode
   wrap themselves in [with_fast_path]). *)
let default_fast = Domain.DLS.new_key (fun () -> true)

let with_fast_path enabled f =
  let saved = Domain.DLS.get default_fast in
  Domain.DLS.set default_fast enabled;
  Fun.protect ~finally:(fun () -> Domain.DLS.set default_fast saved) f

let memcpy_chunk = 4096
let wcache_slots = 16 (* power of two; slot = tag land (wcache_slots - 1) *)

let create ?fast (platform : Platform.t) =
  let fast = match fast with Some f -> f | None -> Domain.DLS.get default_fast in
  let mem =
    Phys_mem.create_tiered ~size:platform.mem_size ~numa_nodes:platform.sockets
      ~capacity_size:platform.capacity_size
  in
  let llcs =
    Array.init platform.sockets (fun _ ->
        Cache.create ~size:platform.llc_size ~ways:platform.llc_ways ~line:platform.line)
  in
  let t =
    { platform; mem; cost = platform.cost; llcs; core_list = [||];
      ctx = Sim_ctx.create (); fast }
  in
  let cores =
    Array.init (Platform.total_cores platform) (fun i ->
        {
          id = i;
          socket = i / platform.cores_per_socket;
          machine = t;
          cycles = 0;
          tlb = Tlb.create platform.tlb;
          l1 = Cache.create ~size:platform.l1_size ~ways:platform.l1_ways ~line:platform.line;
          pt = None;
          tag = 0;
          pkru = Pkey.default;
          fault_handler = None;
          wcaches = Array.init wcache_slots (fun _ -> Page_table.walk_cache_create ());
          scratch = Bytes.create memcpy_chunk;
        })
  in
  t.core_list <- cores;
  (* Ambient tracing (Recorder.with_tracing): give the machine its own
     enabled recorder and point every core's TLB flush hook at it. With
     tracing off nothing is attached and the TLB hooks stay None, so the
     simulation runs exactly the pre-obs code paths. *)
  (match Sj_obs.Recorder.ambient_capacity () with
  | None -> ()
  | Some capacity ->
    Sj_obs.Recorder.attach t.ctx (Sj_obs.Recorder.create ~capacity ());
    Array.iter
      (fun c ->
        Tlb.set_obs c.tlb
          (Some
             (fun flush entries ->
               match Sj_obs.Recorder.active t.ctx with
               | Some r ->
                 Sj_obs.Recorder.emit r ~core:c.id ~cycles:c.cycles
                   (Sj_obs.Event.Tlb_flush { flush; entries })
               | None -> ())))
      cores);
  (* Ambient fault plan (Injector.with_plan): give the machine its own
     injector for the plan. With no plan nothing is attached and every
     hook site short-circuits on [active = None]. *)
  (match Sj_fault.Injector.ambient_plan () with
  | None -> ()
  | Some (plan, seed) ->
    Sj_fault.Injector.attach t.ctx (Sj_fault.Injector.create ~seed plan));
  t

let platform t = t.platform
let mem t = t.mem
let cost t = t.cost
let sim_ctx t = t.ctx
let fast_path_enabled t = t.fast

module Core = struct
  type core = core_state

  let id c = c.id
  let socket c = c.socket
  let sim_ctx c = c.machine.ctx
  let set_fault_handler c h = c.fault_handler <- h
  let cycles c = c.cycles
  let charge c n = c.cycles <- c.cycles + n
  let tlb c = c.tlb
  let current_tag c = c.tag
  let pkru c = c.pkru

  (* A WRPKRU: no CR3 write, no flush, no cache traffic — the caller
     (the Crossing layer) charges the instruction's cost. *)
  let set_pkru c reg = c.pkru <- reg

  let set_page_table c ?(tag = 0) pt =
    let m = c.machine in
    if tag < 0 || tag > Tlb.max_tag c.tlb then invalid_arg "Core.set_page_table: bad tag";
    c.pt <- pt;
    c.tag <- tag;
    (* The walk-cache slots are NOT reset here: each slot revalidates
       itself against the table it cached (walk_cached checks both the
       table's identity and the structural epoch), so a switch back to
       a recently used address space resumes with its paging-structure
       cache warm — the host-side analogue of the tagged TLB below. *)
    (match pt with
    | None -> ()
    | Some _ ->
      charge c (if tag = 0 then m.cost.cr3_load else m.cost.cr3_load_tagged));
    if tag = 0 then Tlb.flush_nonglobal c.tlb

  (* One data access of up to a cache line: L1 -> socket LLC -> DRAM. *)
  let line_access c ~pa =
    let m = c.machine in
    if Cache.access c.l1 ~pa then charge c m.cost.l1_hit
    else if Cache.access m.llcs.(c.socket) ~pa then charge c m.cost.llc_hit
    else begin
      let node = Phys_mem.node_of_frame m.mem (Phys_mem.frame_of_addr pa) in
      charge c
        (match Phys_mem.node_kind m.mem node with
        | Phys_mem.Capacity -> m.cost.dram_capacity
        | Phys_mem.Performance ->
          if node = c.socket then m.cost.dram_local else m.cost.dram_remote)
    end

  let dram_line_cost c ~pa =
    let m = c.machine in
    let node = Phys_mem.node_of_frame m.mem (Phys_mem.frame_of_addr pa) in
    match Phys_mem.node_kind m.mem node with
    | Phys_mem.Capacity -> m.cost.dram_capacity
    | Phys_mem.Performance ->
      if node = c.socket then m.cost.dram_local else m.cost.dram_remote

  (* Charge for all lines overlapped by [pa, pa+len). The fast path
     performs the very same per-line cache accesses (the L1/LLC state
     transitions must be identical), but accumulates the cost locally
     with the DRAM latency resolved once for the run instead of per
     missing line, and charges in one step. *)
  let data_access c ~pa ~len =
    let m = c.machine in
    let line = m.platform.line in
    let first = pa / line and last = (pa + len - 1) / line in
    if not m.fast then
      for l = first to last do
        line_access c ~pa:(l * line)
      done
    else if first = last then begin
      (* Single line (loads, stores, touches): [line_access] with the
         allocation-free cache probe. *)
      if Cache.access_fast c.l1 ~pa then charge c m.cost.l1_hit
      else if Cache.access_fast m.llcs.(c.socket) ~pa then charge c m.cost.llc_hit
      else charge c (dram_line_cost c ~pa)
    end
    else begin
      let dram = dram_line_cost c ~pa:(first * line) in
      if dram <> dram_line_cost c ~pa:(last * line) then
        (* Run straddles a latency-domain boundary (NUMA node or tier):
           resolve per line like the slow path. *)
        for l = first to last do
          line_access c ~pa:(l * line)
        done
      else begin
        let l1 = c.l1 and llc = m.llcs.(c.socket) in
        let c_l1 = m.cost.l1_hit and c_llc = m.cost.llc_hit in
        let acc = ref 0 in
        for l = first to last do
          let pa = l * line in
          if Cache.access_fast l1 ~pa then acc := !acc + c_l1
          else if Cache.access_fast llc ~pa then acc := !acc + c_llc
          else acc := !acc + dram
        done;
        charge c !acc
      end
    end

  let prot_allows (prot : Prot.t) access =
    match access with Read -> prot.read | Write -> prot.write

  (* TLB-miss path, shared by both translation paths; only the walk
     itself differs (cached vs full descent — same result either way). *)
  let translate_miss c pt ~va ~access =
    let m = c.machine in
    match
      if m.fast then
        Page_table.walk_cached pt c.wcaches.(c.tag land (wcache_slots - 1)) ~va
      else Page_table.walk pt ~va
    with
    | None -> raise (Page_fault { va; access })
    | Some mapping ->
      (* The page walker touches one table entry per level; its
         accesses go through the cache hierarchy like data. *)
      charge c (mapping.levels * m.cost.walk_per_level);
      (* A copy-on-write page is inserted (and checked) with write
         masked off, exactly as real kernels clear the PTE W bit on
         fork: the first write takes a protection fault, the fault
         handler breaks the sharing, and the retry re-walks the now
         private, writable mapping. *)
      let eff_prot =
        if mapping.cow then { mapping.prot with Prot.write = false } else mapping.prot
      in
      (* The fill caches the key *tag* only; rights come from [pkru]
         at every hit, so entries survive pkey switches unflushed. *)
      Tlb.insert c.tlb ~key:mapping.key ~tag:c.tag ~va ~pa:mapping.pa ~prot:eff_prot
        ~size:mapping.size ~global:mapping.global;
      if not (prot_allows eff_prot access) then raise (Protection_fault { va; access });
      if
        mapping.key <> 0
        && not
             (Pkey.allows c.pkru ~key:mapping.key
                ~write:(match access with Write -> true | Read -> false))
      then raise (Key_fault { va; access });
      let page = Page_table.bytes_of_page_size mapping.size in
      mapping.pa + (va land (page - 1))

  let translate_once c ~va ~access =
    let m = c.machine in
    match c.pt with
    | None -> raise No_page_table
    | Some pt ->
      charge c m.cost.tlb_hit;
      if m.fast then begin
        (* Allocation-free probe: MRU, then the normal scan. *)
        let r =
          Tlb.translate_probe c.tlb ~tag:c.tag ~pkru:c.pkru ~va
            ~write:(match access with Write -> true | Read -> false)
        in
        if r >= 0 then r
        else if r = Tlb.missed then translate_miss c pt ~va ~access
        else if r = Tlb.key_failed then raise (Key_fault { va; access })
        else raise (Protection_fault { va; access })
      end
      else begin
        match Tlb.lookup c.tlb ~tag:c.tag ~va with
        | Some hit ->
          if not (prot_allows hit.prot access) then
            raise (Protection_fault { va; access });
          if
            hit.key <> 0
            && not
                 (Pkey.allows c.pkru ~key:hit.key
                    ~write:(match access with Write -> true | Read -> false))
          then raise (Key_fault { va; access });
          hit.pa
        | None -> translate_miss c pt ~va ~access
      end

  (* A faulting translation gives the installed handler a chance to
     repair the mapping (demand splits, COW) and retry. [Key_fault]
     deliberately bypasses the handler: key rights live in the
     register, not the mapping, so no repair can make the retry pass. *)
  let translate c ~va ~access =
    let rec go attempts =
      try translate_once c ~va ~access
      with (Page_fault _ | Protection_fault _) as fault -> (
        match c.fault_handler with
        | Some handler when attempts > 0 ->
          (* A stale TLB entry may be what faulted; the handler will
             change the mapping, so drop it before retrying. *)
          if handler ~va ~access then begin
            Tlb.invalidate_page c.tlb ~va;
            go (attempts - 1)
          end
          else raise fault
        | Some _ | None -> raise fault)
    in
    go 4

  let load8 c ~va =
    let pa = translate c ~va ~access:Read in
    data_access c ~pa ~len:1;
    if c.machine.fast then Phys_mem.read8_fast c.machine.mem ~pa
    else Phys_mem.read8 c.machine.mem ~pa

  let store8 c ~va v =
    let pa = translate c ~va ~access:Write in
    data_access c ~pa ~len:1;
    if c.machine.fast then Phys_mem.write8_fast c.machine.mem ~pa v
    else Phys_mem.write8 c.machine.mem ~pa v

  (* Multi-byte accesses may cross a page boundary; split per page. *)
  let split_pages ~va ~len f =
    let pos = ref 0 in
    while !pos < len do
      let a = va + !pos in
      let chunk = min (len - !pos) (Addr.page_size - Addr.offset_in_page a) in
      f ~va:a ~off:!pos ~len:chunk;
      pos := !pos + chunk
    done

  let load64 c ~va =
    if Addr.offset_in_page va <= Addr.page_size - 8 then begin
      let pa = translate c ~va ~access:Read in
      data_access c ~pa ~len:8;
      if c.machine.fast then Phys_mem.read64_fast c.machine.mem ~pa
      else Phys_mem.read64 c.machine.mem ~pa
    end
    else begin
      let v = ref 0L in
      for i = 7 downto 0 do
        v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (load8 c ~va:(va + i)))
      done;
      !v
    end

  let store64 c ~va v =
    if Addr.offset_in_page va <= Addr.page_size - 8 then begin
      let pa = translate c ~va ~access:Write in
      data_access c ~pa ~len:8;
      if c.machine.fast then Phys_mem.write64_fast c.machine.mem ~pa v
      else Phys_mem.write64 c.machine.mem ~pa v
    end
    else
      for i = 0 to 7 do
        store8 c ~va:(va + i) (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
      done

  (* Fused read-xor-write of one aligned word: by construction exactly
     [load64] followed by [store64] of the xored value — same
     translations, same cache traffic, same cycle charges — but a
     single call, so the value never round-trips boxed through the
     caller and the write's translation hits the probe still warm from
     the read. This is GUPS's inner loop (§5, Fig. 8). *)
  let xor64 c ~va mask =
    if c.machine.fast && Addr.offset_in_page va <= Addr.page_size - 8 then begin
      let mem = c.machine.mem in
      let pa_r = translate c ~va ~access:Read in
      data_access c ~pa:pa_r ~len:8;
      let v = Phys_mem.read64_fast mem ~pa:pa_r in
      let pa_w = translate c ~va ~access:Write in
      data_access c ~pa:pa_w ~len:8;
      Phys_mem.write64_fast mem ~pa:pa_w (Int64.logxor v mask)
    end
    else begin
      let v = load64 c ~va in
      store64 c ~va (Int64.logxor v mask)
    end

  (* Bulk operations translate once per page run and (on the fast path)
     blit directly between the caller's buffer and physical memory —
     no intermediate [bytes] per page, so big copies stop churning the
     minor heap. Cycle charges and cache state are identical to the
     slow path: same per-page translations, same per-line accesses. *)

  let read_page_run c ~dst ~va ~off ~len =
    let pa = translate c ~va ~access:Read in
    data_access c ~pa ~len;
    Phys_mem.read_into c.machine.mem ~pa ~dst ~off ~len

  let write_page_run c ~src ~va ~off ~len =
    let pa = translate c ~va ~access:Write in
    data_access c ~pa ~len;
    Phys_mem.write_from c.machine.mem ~pa ~src ~off ~len

  let load_bytes c ~va ~len =
    let out = Bytes.create len in
    if c.machine.fast then
      split_pages ~va ~len (fun ~va ~off ~len -> read_page_run c ~dst:out ~va ~off ~len)
    else
      split_pages ~va ~len (fun ~va ~off ~len ->
          let pa = translate c ~va ~access:Read in
          data_access c ~pa ~len;
          Bytes.blit (Phys_mem.read_bytes c.machine.mem ~pa ~len) 0 out off len);
    out

  let store_bytes c ~va src =
    if c.machine.fast then
      split_pages ~va ~len:(Bytes.length src) (fun ~va ~off ~len ->
          write_page_run c ~src ~va ~off ~len)
    else
      split_pages ~va ~len:(Bytes.length src) (fun ~va ~off ~len ->
          let pa = translate c ~va ~access:Write in
          data_access c ~pa ~len;
          Phys_mem.write_bytes c.machine.mem ~pa (Bytes.sub src off len))

  let touch c ~va ~access =
    let pa = translate c ~va ~access in
    data_access c ~pa ~len:1

  let memset c ~va ~len x =
    if c.machine.fast then
      split_pages ~va ~len (fun ~va ~off:_ ~len ->
          let pa = translate c ~va ~access:Write in
          data_access c ~pa ~len;
          Phys_mem.fill c.machine.mem ~pa ~len x)
    else
      split_pages ~va ~len (fun ~va ~off:_ ~len ->
          let pa = translate c ~va ~access:Write in
          data_access c ~pa ~len;
          Phys_mem.write_bytes c.machine.mem ~pa (Bytes.make len x))

  let memcpy c ~dst ~src ~len =
    (* Chunked through a bounce buffer; charges both streams. Copies
       are sequential, so hardware prefetching and write combining
       overlap most memory stalls: refund 7/8 of the serially
       accumulated cycles (a streaming bandwidth of roughly 8x the
       dependent-access rate, representative of rep-movsb copies). *)
    let before = c.cycles in
    let chunk = memcpy_chunk in
    let pos = ref 0 in
    if c.machine.fast then begin
      (* Same chunked bounce semantics (overlap behaves identically),
         but through the core's reusable scratch buffer. *)
      let scratch = c.scratch in
      while !pos < len do
        let n = min chunk (len - !pos) in
        split_pages ~va:(src + !pos) ~len:n (fun ~va ~off ~len ->
            read_page_run c ~dst:scratch ~va ~off ~len);
        split_pages ~va:(dst + !pos) ~len:n (fun ~va ~off ~len ->
            write_page_run c ~src:scratch ~va ~off ~len);
        pos := !pos + n
      done
    end
    else
      while !pos < len do
        let n = min chunk (len - !pos) in
        let data = load_bytes c ~va:(src + !pos) ~len:n in
        store_bytes c ~va:(dst + !pos) data;
        pos := !pos + n
      done;
    let delta = c.cycles - before in
    charge c (-(delta - ((delta + 7) / 8)))

  let tlb_misses c = (Tlb.stats c.tlb).misses
  let tlb_hits c = (Tlb.stats c.tlb).hits
end

let core t i = t.core_list.(i)
let cores t = t.core_list

let capacity_node t = Phys_mem.capacity_node t.mem

let cool_caches t =
  Array.iter (fun c -> Cache.clear c.l1) t.core_list;
  Array.iter Cache.clear t.llcs

let alloc_pages ?node ?(contiguous = false) t ~n ~charge_to =
  let frames =
    (* Contiguous runs are 2 MiB-aligned so they are mappable with huge
       pages. *)
    if contiguous then
      Phys_mem.alloc_frames_contiguous ?node ~align:(Size.mib 2 / Addr.page_size) t.mem ~n
    else Phys_mem.alloc_frames ?node t.mem ~n
  in
  (match charge_to with
  | Some c -> Core.charge c (n * t.cost.page_zero)
  | None -> ());
  frames
