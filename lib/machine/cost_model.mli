(** Cycle-cost constants for the simulated machine.

    Wherever the paper reports a directly measured hardware cost we use
    the paper's own number (Table 2 / §5.1, measured on platform M2);
    remaining constants are representative Xeon figures calibrated so the
    derived curves (Fig. 1, Fig. 6, Fig. 7) land in the paper's ranges. *)

type t = {
  clock_ghz : float;  (** cycles -> seconds conversion *)
  (* Address-space switching (Table 2) *)
  cr3_load : int;  (** CR3 write, tags disabled: 130 *)
  cr3_load_tagged : int;  (** CR3 write with PCID logic: 224 *)
  syscall_dragonfly : int;  (** DragonFly syscall entry/exit: 357 *)
  syscall_barrelfish : int;  (** Barrelfish syscall: 130 *)
  switch_bookkeeping_df : int;  (** DragonFly kernel vmspace juggling, untagged *)
  switch_bookkeeping_df_tagged : int;
  cap_invoke_bf : int;  (** Barrelfish capability invocation, untagged *)
  cap_invoke_bf_tagged : int;
  (* Translation machinery *)
  tlb_hit : int;  (** added latency of a TLB hit (folded into L1) *)
  walk_per_level : int;  (** page-walker cost per level touched *)
  pte_write : int;  (** kernel writing one PTE (Fig. 1 slope) *)
  pte_clear : int;
  table_alloc : int;  (** allocating+zeroing one page-table page *)
  page_zero : int;  (** zeroing a data page on first allocation *)
  (* Memory hierarchy *)
  l1_hit : int;
  llc_hit : int;
  dram_local : int;
  dram_remote : int;  (** cross-socket access penalty included *)
  dram_capacity : int;
      (** capacity-tier (NVM-class) access — the sec 7 heterogeneous
          memory story *)
  (* Interconnect / IPC *)
  cacheline_intra : int;  (** cache-line ping between cores, same socket *)
  cacheline_cross : int;  (** across sockets *)
  (* Software constants *)
  syscall_generic : int;  (** non-SpaceJMP syscalls (read/write/mmap entry) *)
  lock_uncontended : int;  (** acquiring a free lockable-segment lock *)
  lock_xfer : int;  (** handing a contended lock between cores *)
  (* Machine-to-machine fabric (cluster channels) *)
  net_setup : int;  (** per-message NIC doorbell + descriptor + traversal *)
  net_link : int;  (** per cache-line-sized unit at wire rate *)
  (* Protection-key compartments *)
  wrpkru : int;  (** writing the per-core key-permission register *)
  pkey_bookkeeping : int;
      (** user-space lookup of the target compartment's register image *)
}

val m1 : t
(** 2x12c Xeon X5650 2.66 GHz, 92 GiB (Table 1). *)

val m2 : t
(** 2x10c Xeon E5-2670v2 2.50 GHz, 256 GiB -- the Table 2 platform. *)

val m3 : t
(** 2x18c Xeon E5-2699v3 2.30 GHz, 512 GiB -- the GUPS/Fig. 6 platform. *)

val cycles_to_seconds : t -> int -> float
val cycles_to_ms : t -> int -> float
val cycles_to_us : t -> int -> float

val pkey_switch_cost : t -> int
(** Immediate cost of one compartment crossing: a WRPKRU plus the
    runtime's bookkeeping. No kernel entry, no CR3 write, no flush —
    strictly cheaper than every {!vas_switch_cost} cell. *)

val vas_switch_cost : t -> os:[ `Dragonfly | `Barrelfish ] -> tagged:bool -> int
(** Immediate cost of one [vas_switch] (Table 2's bottom row):
    syscall + CR3 write + bookkeeping. Subsequent TLB-refill costs are
    charged organically as the TLB misses. *)
