type t = {
  clock_ghz : float;
  cr3_load : int;
  cr3_load_tagged : int;
  syscall_dragonfly : int;
  syscall_barrelfish : int;
  switch_bookkeeping_df : int;
  switch_bookkeeping_df_tagged : int;
  cap_invoke_bf : int;
  cap_invoke_bf_tagged : int;
  tlb_hit : int;
  walk_per_level : int;
  pte_write : int;
  pte_clear : int;
  table_alloc : int;
  page_zero : int;
  l1_hit : int;
  llc_hit : int;
  dram_local : int;
  dram_remote : int;
  dram_capacity : int;
  cacheline_intra : int;
  cacheline_cross : int;
  syscall_generic : int;
  lock_uncontended : int;
  lock_xfer : int;
  net_setup : int;
  net_link : int;
  (* Protection-key compartment crossing *)
  wrpkru : int;
  pkey_bookkeeping : int;
}

(* Table 2 measured the M2 platform; the switching constants below make
   [vas_switch_cost] reproduce its four cells exactly:
     DragonFly untagged: 357 + 130 + 640 = 1127
     DragonFly tagged:   357 + 224 + 226 =  807
     Barrelfish untagged:130 + 130 + 404 =  664
     Barrelfish tagged:  130 + 224 + 108 =  462 *)
let base =
  {
    clock_ghz = 2.5;
    cr3_load = 130;
    cr3_load_tagged = 224;
    syscall_dragonfly = 357;
    syscall_barrelfish = 130;
    switch_bookkeeping_df = 640;
    switch_bookkeeping_df_tagged = 226;
    cap_invoke_bf = 404;
    cap_invoke_bf_tagged = 108;
    tlb_hit = 0;
    walk_per_level = 20;
    pte_write = 42;
    pte_clear = 30;
    table_alloc = 550;
    page_zero = 700;
    l1_hit = 4;
    llc_hit = 42;
    dram_local = 200;
    dram_remote = 310;
    dram_capacity = 900;
    cacheline_intra = 150;
    cacheline_cross = 600;
    syscall_generic = 300;
    lock_uncontended = 40;
    lock_xfer = 220;
    (* Machine-to-machine fabric (cluster runs): QDR InfiniBand-class
       numbers — ~1.2 us one-way small-message latency = 3,000 cycles
       at 2.5 GHz for doorbell + DMA descriptor + NIC traversal, then
       one 64 B line every ~16 ns at 32 Gbit/s wire rate = 40 cycles. *)
    net_setup = 3_000;
    net_link = 40;
    (* A compartment crossing is one register write plus user-space
       bookkeeping — no kernel entry, no CR3, no flush. WRPKRU measures
       ~20-30 cycles on Xeon (it serializes but touches no TLB state);
       the bookkeeping is the runtime's lookup of the target
       compartment's register image. Total 60: an order of magnitude
       under the cheapest Table 2 switch (462). *)
    wrpkru = 28;
    pkey_bookkeeping = 32;
  }

let m1 = { base with clock_ghz = 2.66; dram_local = 230; dram_remote = 360 }
let m2 = base
let m3 = { base with clock_ghz = 2.3; llc_hit = 48; dram_local = 190; dram_remote = 290 }

let cycles_to_seconds t c = float_of_int c /. (t.clock_ghz *. 1e9)
let cycles_to_ms t c = cycles_to_seconds t c *. 1e3
let cycles_to_us t c = cycles_to_seconds t c *. 1e6

let pkey_switch_cost t = t.wrpkru + t.pkey_bookkeeping

let vas_switch_cost t ~os ~tagged =
  let cr3 = if tagged then t.cr3_load_tagged else t.cr3_load in
  match os with
  | `Dragonfly ->
    t.syscall_dragonfly + cr3
    + if tagged then t.switch_bookkeeping_df_tagged else t.switch_bookkeeping_df
  | `Barrelfish ->
    t.syscall_barrelfish + cr3
    + if tagged then t.cap_invoke_bf_tagged else t.cap_invoke_bf
