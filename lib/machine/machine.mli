(** The simulated machine: physical memory, sockets with shared LLCs,
    and cores with private TLBs, L1 caches and a cycle clock.

    Cores execute *memory operations*, not instructions: workloads are
    OCaml code that calls [load]/[store] on a core, and the core charges
    simulated cycles for translation (TLB, page walk) and the data access
    (L1 / LLC / local or remote DRAM). Explicit [charge] covers the
    fixed-cost events (syscalls, CR3 writes) the OS layer accounts. *)

type t

type access = Read | Write

exception Page_fault of { va : int; access : access }
(** Translation missing in the current page table. *)

exception Protection_fault of { va : int; access : access }
(** Translation present but the access violates its protections. *)

exception Key_fault of { va : int; access : access }
(** Translation present and paging protections admit the access, but
    the core's protection-key register denies the page's key tag
    ({!Sj_paging.Pkey}). Not repairable by the page-fault handler — key
    rights live in the register, not the mapping — so [translate]
    re-raises it without consulting the handler. *)

exception No_page_table
(** A data access was attempted with no page table installed. *)

val create : ?fast:bool -> Platform.t -> t
(** [?fast] selects the host-side translation/bulk fast path (per-core
    MRU translation cache, software page-walk cache, batched bulk
    accesses). Semantics-preserving: simulated cycles, TLB/page-table
    stats and data results are bit-identical either way
    (test/test_fastpath.ml asserts this); only host wall-clock differs.
    Defaults to the ambient {!with_fast_path} setting (initially
    [true]); [~fast:false] is the escape hatch / baseline. *)

val with_fast_path : bool -> (unit -> 'a) -> 'a
(** [with_fast_path enabled f] runs [f] with the given default for
    machines created without an explicit [?fast] — how the bench
    harness drives whole workloads down either path. The default is
    *domain-local*: setting it in one domain does not affect tasks
    running in others, so a parallel task that needs a specific mode
    wraps its own body (fresh domains start at [true]). *)

val fast_path_enabled : t -> bool

val platform : t -> Platform.t
val mem : t -> Sj_mem.Phys_mem.t
val cost : t -> Cost_model.t

val sim_ctx : t -> Sj_util.Sim_ctx.t
(** The machine's private world state: id generators and the global-
    segment layout cursor for everything simulated on this machine.
    One per machine — never shared — which is what makes two machines
    in one process (or two domains) fully independent. *)

module Core : sig
  type core

  val id : core -> int
  val socket : core -> int

  val sim_ctx : core -> Sj_util.Sim_ctx.t
  (** The owning machine's world state — how event emitters below
      [sj_core] reach the simulation's [Sj_obs] recorder. *)

  val cycles : core -> int
  (** Cycle clock; monotonically increasing. *)

  val charge : core -> int -> unit
  (** Advance the clock by a fixed cost. *)

  val tlb : core -> Sj_tlb.Tlb.t

  val set_page_table :
    core -> ?tag:int -> Sj_paging.Page_table.t option -> unit
  (** Install a translation root (a CR3 write) with ASID [tag]
      (default 0). Charges the CR3 cost; tag 0 additionally flushes
      non-global TLB entries (§4.4). [None] uninstalls (used when a
      process is descheduled). *)

  val current_tag : core -> int

  val pkru : core -> Sj_paging.Pkey.reg
  (** The core's protection-key permission register; {!Sj_paging.Pkey.default}
      (all keys permitted) until a pkey switch writes it. *)

  val set_pkru : core -> Sj_paging.Pkey.reg -> unit
  (** Write the register (a WRPKRU). No CR3 write, no TLB flush, no
      cache effect — resident translations simply re-evaluate their key
      tags against the new register at their next hit. The caller (the
      ABI's crossing layer) charges the instruction cost. *)

  val set_fault_handler : core -> (va:int -> access:access -> bool) option -> unit
  (** Install the OS's page-fault handler. When a data access raises
      {!Page_fault} or {!Protection_fault}, the handler runs (charged
      its own costs via the kernel layer); returning [true] means the
      fault was resolved (mapping fixed — e.g. a copy-on-write split)
      and the access retries, [false] re-raises to the application.
      Bounded retries guard against non-progressing handlers. *)

  val translate : core -> va:int -> access:access -> int
  (** VA -> PA through TLB or page walk, charging translation costs and
      checking protections. *)

  val load8 : core -> va:int -> int
  val store8 : core -> va:int -> int -> unit
  val load64 : core -> va:int -> int64
  val store64 : core -> va:int -> int64 -> unit

  (** Fused read-modify-write: observably identical (cycles, cache and
      TLB state, stored value) to [load64] followed by [store64] of the
      xored value, but one call — the GUPS update loop. *)
  val xor64 : core -> va:int -> int64 -> unit
  val load_bytes : core -> va:int -> len:int -> bytes
  val store_bytes : core -> va:int -> bytes -> unit

  val touch : core -> va:int -> access:access -> unit
  (** Charge for an access (translation + data) without moving data;
      used by synthetic kernels that only need timing. *)

  val memset : core -> va:int -> len:int -> char -> unit
  val memcpy : core -> dst:int -> src:int -> len:int -> unit
  (** Virtual-address copy through the cache model (both streams). *)

  val tlb_misses : core -> int
  val tlb_hits : core -> int
end

val core : t -> int -> Core.core
(** [core t i] is core [i], numbered socket-major: cores
    [0 .. cores_per_socket-1] are on socket 0. *)

val cores : t -> Core.core array

val alloc_pages :
  ?node:int -> ?contiguous:bool ->
  t -> n:int -> charge_to:Core.core option -> Sj_mem.Phys_mem.frame array
(** Allocate and zero [n] frames, charging page-zeroing cost to a core
    when given (kernel allocation paths). *)

val capacity_node : t -> int option
(** NUMA node index of the capacity tier, if the platform has one. *)

val cool_caches : t -> unit
(** Invalidate every L1 and LLC (no cost charged). Experiments call
    this between logical process runs so one run's warm data does not
    leak into another's measurement. *)
