open Sj_util

type level = L1 | LLC | Memory

(* Cache metadata layout is tuned for the *host*: each set is one
   contiguous row of (tag, lru) pairs in a single flat array —
   [meta.(2*(set*ways+way))] is the tag, [... + 1] its LRU stamp. A
   probe that hits way w therefore reads and writes one short
   contiguous span (usually one host cache line), where per-set
   sub-arrays plus a separate LRU array cost several dependent misses;
   on multi-MiB LLCs whose metadata cannot stay host-resident this
   dominates the simulator's own wall clock. *)
type t = {
  sets : int;
  ways : int;
  line : int;
  line_shift : int;
  set_mask : int; (* sets - 1 when a power of two, else -1 (use mod) *)
  meta : int array; (* interleaved (tag, lru); tag -1 = invalid *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~size ~ways ~line =
  if not (Size.is_power_of_two line) then invalid_arg "Cache.create: line size";
  let lines = size / line in
  if lines mod ways <> 0 then invalid_arg "Cache.create: size/ways mismatch";
  let sets = lines / ways in
  if sets <= 0 then invalid_arg "Cache.create: set count";
  let meta = Array.make (sets * ways * 2) 0 in
  let i = ref 0 in
  while !i < Array.length meta do
    meta.(!i) <- -1;
    (* tags start invalid, stamps at 0 *)
    i := !i + 2
  done;
  {
    sets;
    ways;
    line;
    line_shift = Size.log2 line;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    meta;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_addr t pa = pa lsr t.line_shift

(* Power-of-two set counts index by mask; LLCs with non-power-of-two
   associativity products (e.g. 25 MiB / 20-way) index by modulo. *)
let set_of t la = if t.set_mask >= 0 then la land t.set_mask else la mod t.sets

(* Slot index (into [meta], i.e. already doubled) of [la] in its set's
   row, or -1. *)
let find_slot t base la =
  let meta = t.meta in
  let stop = base + (t.ways * 2) in
  let i = ref base in
  while !i < stop && Array.unsafe_get meta !i <> la do i := !i + 2 done;
  if !i < stop then !i else -1

let touch t slot =
  t.clock <- t.clock + 1;
  t.meta.(slot + 1) <- t.clock

(* Fill on miss: first invalid way wins, else strict-min LRU with the
   earliest way breaking ties. *)
let fill t base la =
  let meta = t.meta in
  let stop = base + (t.ways * 2) in
  let victim = ref base in
  let i = ref base in
  let go = ref true in
  while !go && !i < stop do
    if Array.unsafe_get meta !i = -1 then begin
      victim := !i;
      go := false
    end
    else begin
      if Array.unsafe_get meta (!i + 1) < Array.unsafe_get meta (!victim + 1) then
        victim := !i;
      i := !i + 2
    end
  done;
  meta.(!victim) <- la;
  touch t !victim

let access t ~pa =
  let la = line_addr t pa in
  let base = set_of t la * t.ways * 2 in
  let slot = find_slot t base la in
  if slot >= 0 then begin
    touch t slot;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    fill t base la;
    false
  end

(* [access] is already allocation-free on the flat layout; the fast
   path shares it. *)
let access_fast = access

let probe t ~pa =
  let la = line_addr t pa in
  let base = set_of t la * t.ways * 2 in
  let slot = find_slot t base la in
  if slot >= 0 then begin
    touch t slot;
    true
  end
  else false

let invalidate_line t ~pa =
  let la = line_addr t pa in
  let base = set_of t la * t.ways * 2 in
  let slot = find_slot t base la in
  if slot >= 0 then t.meta.(slot) <- -1

let clear t =
  let meta = t.meta in
  let i = ref 0 in
  while !i < Array.length meta do
    meta.(!i) <- -1;
    i := !i + 2
  done

let hits t = t.hits
let misses t = t.misses
let line_size t = t.line

let pp_level fmt = function
  | L1 -> Format.pp_print_string fmt "L1"
  | LLC -> Format.pp_print_string fmt "LLC"
  | Memory -> Format.pp_print_string fmt "DRAM"
