open Sj_util

type level = L1 | LLC | Memory

(* Cache metadata layout is tuned for the *host*: each set is one
   contiguous row of (tag, lru) pairs — [row.(2*way)] is the tag,
   [row.(2*way + 1)] its LRU stamp — so a probe reads and writes one
   short contiguous span (usually a host cache line or two), where
   per-way sub-structures plus a separate LRU array cost several
   dependent misses.

   Rows are allocated lazily on a set's first touch: a multi-MiB LLC's
   metadata would otherwise be memset at every machine creation even
   though a short workload touches a handful of its sets. Untouched
   sets all point at the shared [no_row] sentinel (length 0, tested by
   physical equality), so creation cost is one pointer-array fill and
   [clear] is the same fill again. *)
type t = {
  sets : int;
  ways : int;
  line : int;
  line_shift : int;
  set_mask : int; (* sets - 1 when a power of two, else -1 (use mod) *)
  rows : int array array; (* per set: interleaved (tag, lru); tag -1 = invalid *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  (* Last line that hit, memoised so back-to-back accesses to one line
     (a load then its store, byte streams) skip the set scan. A line
     lives in at most one way (fill only runs after a failed probe), so
     [mru_row.(mru_slot) = mru_la] proves the scan would return exactly
     [mru_slot]; eviction or invalidation overwrites the tag, and
     [clear] drops the memo by hand (replaced rows keep their tags).
     Line addresses are non-negative, so -1 means empty. *)
  mutable mru_la : int;
  mutable mru_row : int array;
  mutable mru_slot : int;
}

let no_row : int array = [||]

let create ~size ~ways ~line =
  if not (Size.is_power_of_two line) then invalid_arg "Cache.create: line size";
  let lines = size / line in
  if lines mod ways <> 0 then invalid_arg "Cache.create: size/ways mismatch";
  let sets = lines / ways in
  if sets <= 0 then invalid_arg "Cache.create: set count";
  {
    sets;
    ways;
    line;
    line_shift = Size.log2 line;
    set_mask = (if sets land (sets - 1) = 0 then sets - 1 else -1);
    rows = Array.make sets no_row;
    clock = 0;
    hits = 0;
    misses = 0;
    mru_la = -1;
    mru_row = no_row;
    mru_slot = 0;
  }

let line_addr t pa = pa lsr t.line_shift

(* Power-of-two set counts index by mask; LLCs with non-power-of-two
   associativity products (e.g. 25 MiB / 20-way) index by modulo. *)
let set_of t la = if t.set_mask >= 0 then la land t.set_mask else la mod t.sets

(* The set's row, allocating all-invalid on first touch. Stamp slots
   start at -1 but are never read before being written: [fill] takes an
   invalid way before comparing stamps and writes the stamp with the
   tag. *)
let row_of t set =
  let row = Array.unsafe_get t.rows set in
  if row != no_row then row
  else begin
    let row = Array.make (t.ways * 2) (-1) in
    Array.unsafe_set t.rows set row;
    row
  end

(* Slot index (into the row, i.e. already doubled) of [la], or -1. *)
let find_slot t row la =
  let stop = t.ways * 2 in
  let i = ref 0 in
  while !i < stop && Array.unsafe_get row !i <> la do i := !i + 2 done;
  if !i < stop then !i else -1

let touch t row slot =
  t.clock <- t.clock + 1;
  Array.unsafe_set row (slot + 1) t.clock

(* Fill on miss: first invalid way wins, else strict-min LRU with the
   earliest way breaking ties. *)
let fill t row la =
  let stop = t.ways * 2 in
  let victim = ref 0 in
  let i = ref 0 in
  let go = ref true in
  while !go && !i < stop do
    if Array.unsafe_get row !i = -1 then begin
      victim := !i;
      go := false
    end
    else begin
      if Array.unsafe_get row (!i + 1) < Array.unsafe_get row (!victim + 1) then
        victim := !i;
      i := !i + 2
    end
  done;
  Array.unsafe_set row !victim la;
  touch t row !victim;
  t.mru_la <- la;
  t.mru_row <- row;
  t.mru_slot <- !victim

let access t ~pa =
  let la = line_addr t pa in
  if la = t.mru_la && Array.unsafe_get t.mru_row t.mru_slot = la then begin
    t.hits <- t.hits + 1;
    touch t t.mru_row t.mru_slot;
    true
  end
  else begin
    let row = row_of t (set_of t la) in
    let slot = find_slot t row la in
    if slot >= 0 then begin
      touch t row slot;
      t.hits <- t.hits + 1;
      t.mru_la <- la;
      t.mru_row <- row;
      t.mru_slot <- slot;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      fill t row la;
      false
    end
  end

(* [access] is already allocation-free once a set's row exists; the
   fast path shares it. *)
let access_fast = access

let probe t ~pa =
  let la = line_addr t pa in
  let row = row_of t (set_of t la) in
  let slot = find_slot t row la in
  if slot >= 0 then begin
    touch t row slot;
    true
  end
  else false

let invalidate_line t ~pa =
  let la = line_addr t pa in
  let row = row_of t (set_of t la) in
  let slot = find_slot t row la in
  if slot >= 0 then row.(slot) <- -1

let clear t =
  (* Touched sets re-allocate their rows on next access; the MRU memo
     must drop by hand since detached rows keep their tags. *)
  Array.fill t.rows 0 t.sets no_row;
  t.mru_la <- -1;
  t.mru_row <- no_row

let hits t = t.hits
let misses t = t.misses
let line_size t = t.line

let pp_level fmt = function
  | L1 -> Format.pp_print_string fmt "L1"
  | LLC -> Format.pp_print_string fmt "LLC"
  | Memory -> Format.pp_print_string fmt "DRAM"
