(** Set-associative data-cache model (physical-address tagged).

    Two levels are modeled per the evaluation's needs: a per-core L1D
    and a shared last-level cache. The model tracks presence only (no
    dirty write-back timing); an access returns the level that hit so
    the core can charge the right latency. *)

type t

type level = L1 | LLC | Memory

val create : size:int -> ways:int -> line:int -> t
(** [size] bytes, [ways]-associative, [line]-byte lines. *)

val access : t -> pa:int -> bool
(** Touch the line holding [pa]; true = hit, false = miss+fill. *)

val access_fast : t -> pa:int -> bool
(** Observably identical to {!access} (same state transitions, stats
    and result) but allocation-free; used by the machine's host-side
    fast path. *)

val probe : t -> pa:int -> bool
(** Like {!access} but without filling on miss (used by coherence). *)

val invalidate_line : t -> pa:int -> unit
val clear : t -> unit
val hits : t -> int
val misses : t -> int
val line_size : t -> int
val pp_level : Format.formatter -> level -> unit
