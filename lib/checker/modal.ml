(* One report format for the two legs of the modal checker: static
   violations from the dataflow analysis and runtime violations from the
   interpreter both render as "modal-<leg> <site>: <what>". *)

type source = Static | Runtime
type violation = { source : source; site : string; what : string }

let source_name = function Static -> "static" | Runtime -> "runtime"
let to_string v = Printf.sprintf "modal-%s %s: %s" (source_name v.source) v.site v.what

let site_string (s : Analysis.site) =
  Printf.sprintf "%s/%s[%d]" s.Analysis.in_func s.Analysis.in_block s.Analysis.index

let of_analysis (v : Analysis.violation) =
  let what =
    Format.asprintf "%a  (%a)" Ir.pp_instr v.Analysis.instr
      (Format.pp_print_list
         ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
         Analysis.pp_reason)
      v.Analysis.reasons
  in
  { source = Static; site = site_string v.Analysis.site; what }

let of_outcome (o : Interp.outcome) =
  match o with
  | Interp.Finished _ -> None
  | Interp.Trapped { site; what } -> Some { source = Runtime; site; what }
  | Interp.Faulted { site; what } -> Some { source = Runtime; site; what = "fault: " ^ what }
  | Interp.Type_fault { site; what } ->
    Some { source = Runtime; site; what = "type fault: " ^ what }
  | Interp.Out_of_fuel -> Some { source = Runtime; site = "-"; what = "out of fuel" }

let check ?fuel prog =
  let info = Analysis.analyze prog in
  let static = List.map of_analysis (Analysis.violations info) in
  let runtime = Option.to_list (of_outcome (Interp.run ?fuel prog)) in
  static @ runtime
