(** Unified reporting for modal ("valid-in-VAS v") assertions.

    An [assert_valid r, v] in checker IR is verified twice: statically
    by {!Analysis.violations} and dynamically by {!Interp.run}. Both
    legs report through this one violation record so the explorer (and
    humans) see a single format regardless of which leg caught the
    problem. *)

type source = Static | Runtime
type violation = { source : source; site : string; what : string }

val to_string : violation -> string
(** ["modal-static f/b[i]: ..."] / ["modal-runtime f/b[i]: ..."]. *)

val of_analysis : Analysis.violation -> violation
val of_outcome : Interp.outcome -> violation option
(** [None] iff the program [Finished]. *)

val check : ?fuel:int -> Ir.program -> violation list
(** Run both legs: all static violations, then the runtime outcome of
    executing [main]. Empty iff the program is statically clean and
    finishes without trap/fault. *)
