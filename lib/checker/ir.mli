(** SSA intermediate representation for the safety analysis (Fig. 5).

    The instruction set is exactly the paper's analysis-relevant subset:
    VAS switches, [vcast], stack/global/heap allocation, copies, phis,
    loads, stores, calls and returns — plus integer constants (so stores
    of non-pointers are distinguishable) and a conditional branch to
    give programs interesting control flow.

    Programs are in SSA form per function: each register is assigned
    exactly once; [validate] enforces this along with CFG well-formedness. *)

type reg = string
type label = string

type instr =
  | Switch of string  (** switch to the named VAS *)
  | Vcast of reg * reg * string  (** x = vcast y v : assert y valid in v *)
  | Alloca of reg  (** x = alloca : pointer into the common region (stack) *)
  | Global of reg  (** x = &global : pointer into the common region *)
  | Malloc of reg  (** x = malloc : pointer into the current VAS's heap *)
  | Const of reg * int  (** x = n : integer, not a pointer *)
  | Copy of reg * reg  (** x = y *)
  | Phi of reg * (label * reg) list  (** x = phi [(from_block, y); ...] *)
  | Load of reg * reg  (** x = *y *)
  | Store of reg * reg  (** *x = y *)
  | Call of reg option * string * reg list  (** x = f(args) *)
  | Check_deref of reg  (** inserted: trap if reg is not valid in the current VAS *)
  | Check_store of reg * reg  (** inserted: trap if storing y to x violates the rules *)
  | Assert_valid of reg * string
      (** [assert_valid r, v] — the programmer's modal claim that the
          pointer in [r] is valid-in-VAS [v] (PAPERS.md "Modal
          Abstractions"). Checked twice with one report format
          ({!Modal}): statically by {!Analysis.violations} against
          [vas_valid], dynamically by the interpreter (a mismatch
          traps). Pointers into the common region satisfy every
          assertion — the common region is mapped in all spaces. *)

type terminator =
  | Jmp of label
  | Br of reg * label * label  (** conditional: nonzero -> first target *)
  | Ret of reg option

type block = { label : label; instrs : instr list; term : terminator }

type func = { fname : string; params : reg list; blocks : block list }
(** The first block is the entry. *)

type program = { funcs : func list }
(** The first function is [main]; execution starts there with no
    current VAS (a distinguished "primary" space). *)

val func : program -> string -> func
(** Raises [Not_found]. *)

val entry_block : func -> block
val block : func -> label -> block

val validate : program -> (unit, string) result
(** SSA single-assignment, no use of undefined registers (phi inputs
    exempt from dominance — we only check they are defined somewhere in
    the function), branch targets exist, called functions exist, arity
    matches, phi sources name actual predecessor labels. *)

val defs_of_instr : instr -> reg list
val uses_of_instr : instr -> reg list
val predecessors : func -> label -> label list
val pp_program : Format.formatter -> program -> unit
val pp_instr : Format.formatter -> instr -> unit
