module Velt = struct
  type t = V of string | Common | Unknown

  let compare = compare

  let pp fmt = function
    | V s -> Format.pp_print_string fmt s
    | Common -> Format.pp_print_string fmt "vcommon"
    | Unknown -> Format.pp_print_string fmt "vunknown"
end

module Vset = Set.Make (Velt)

let primary = "@primary"

type site = { in_func : string; in_block : string; index : int }

type info = {
  prog : Ir.program;
  ins : (site, Vset.t) Hashtbl.t;
  valid : (string * Ir.reg, Vset.t) Hashtbl.t; (* (func, reg) *)
  entry_in : (string, Vset.t) Hashtbl.t; (* function entry VAS_in *)
  exit_out : (string, Vset.t) Hashtbl.t; (* union of VAS_out at rets *)
  ret_valid : (string, Vset.t) Hashtbl.t; (* union of returned pointer validity *)
  mutable changed : bool;
}

let get tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:Vset.empty

let join info tbl key s =
  let old = get tbl key in
  let merged = Vset.union old s in
  if not (Vset.equal merged old) then begin
    Hashtbl.replace tbl key merged;
    info.changed <- true
  end

let valid_of info fname reg = get info.valid (fname, reg)

(* Transfer one instruction: given VAS_in, produce VAS_out and update
   register validity (Fig. 5's table). *)
let transfer info (f : Ir.func) site (i : Ir.instr) vin =
  let fname = f.Ir.fname in
  join info info.ins site vin;
  let jv reg s = join info info.valid (fname, reg) s in
  match i with
  | Ir.Switch v ->
    ignore vin;
    Vset.singleton (Velt.V v)
  | Ir.Vcast (x, _, v) ->
    jv x (Vset.singleton (Velt.V v));
    vin
  | Ir.Alloca x | Ir.Global x ->
    jv x (Vset.singleton Velt.Common);
    vin
  | Ir.Malloc x ->
    jv x vin;
    vin
  | Ir.Const (_, _) -> vin
  | Ir.Copy (x, y) ->
    jv x (valid_of info fname y);
    vin
  | Ir.Phi (x, ins) ->
    List.iter (fun (_, y) -> jv x (valid_of info fname y)) ins;
    vin
  | Ir.Load (x, y) ->
    let vy = valid_of info fname y in
    (* A pointer loaded from VAS [v]'s memory is valid in [v] — the
       store rules guarantee a region only holds its own pointers.
       Loading through the common region, through a statically unknown
       pointer, or through a non-pointer yields an untrackable value. *)
    if
      Vset.mem Velt.Common vy || Vset.mem Velt.Unknown vy || Vset.is_empty vy
    then jv x (Vset.singleton Velt.Unknown);
    jv x (Vset.filter (function Velt.V _ -> true | Velt.Common | Velt.Unknown -> false) vy);
    vin
  | Ir.Store (_, _) -> vin
  | Ir.Call (res, callee, args) ->
    let g = Ir.func info.prog callee in
    join info info.entry_in callee vin;
    List.iter2 (fun param arg -> join info info.valid (callee, param) (valid_of info fname arg))
      g.Ir.params args;
    (match res with Some x -> jv x (get info.ret_valid callee) | None -> ());
    (* After the call the current VAS is whatever the callee exits in;
       before the callee is analyzed this is empty, so keep vin too
       (fixpoint will refine upward). *)
    let callee_out = get info.exit_out callee in
    if Vset.is_empty callee_out then vin else callee_out
  | Ir.Check_deref _ | Ir.Check_store _ | Ir.Assert_valid _ -> vin

let analyze_func info (f : Ir.func) =
  let fname = f.Ir.fname in
  (* Block-entry in-sets within this function. *)
  let block_in = Hashtbl.create 8 in
  let entry = (Ir.entry_block f).Ir.label in
  Hashtbl.replace block_in entry (get info.entry_in fname);
  (* Iterate blocks until stable within the function (cheap; the outer
     fixpoint handles interprocedural effects). *)
  let local_changed = ref true in
  while !local_changed do
    local_changed := false;
    List.iter
      (fun (b : Ir.block) ->
        let vin0 = Option.value (Hashtbl.find_opt block_in b.Ir.label) ~default:Vset.empty in
        let vout =
          List.fold_left
            (fun vin (idx, instr) ->
              transfer info f { in_func = fname; in_block = b.Ir.label; index = idx } instr vin)
            vin0
            (List.mapi (fun idx instr -> (idx, instr)) b.Ir.instrs)
        in
        let propagate l =
          let old = Option.value (Hashtbl.find_opt block_in l) ~default:Vset.empty in
          let merged = Vset.union old vout in
          if not (Vset.equal merged old) then begin
            Hashtbl.replace block_in l merged;
            local_changed := true
          end
        in
        match b.Ir.term with
        | Ir.Jmp l -> propagate l
        | Ir.Br (_, l1, l2) ->
          propagate l1;
          propagate l2
        | Ir.Ret r ->
          join info info.exit_out fname vout;
          (match r with
          | Some reg -> join info info.ret_valid fname (valid_of info fname reg)
          | None -> ()))
      f.Ir.blocks
  done

let analyze prog =
  let info =
    {
      prog;
      ins = Hashtbl.create 64;
      valid = Hashtbl.create 64;
      entry_in = Hashtbl.create 8;
      exit_out = Hashtbl.create 8;
      ret_valid = Hashtbl.create 8;
      changed = true;
    }
  in
  (match prog.Ir.funcs with
  | main :: _ -> Hashtbl.replace info.entry_in main.Ir.fname (Vset.singleton (Velt.V primary))
  | [] -> Sj_abi.Error.fail Invalid ~op:"checker" "Analysis.analyze: empty program");
  let rounds = ref 0 in
  while info.changed do
    info.changed <- false;
    incr rounds;
    if !rounds > 1000 then Sj_abi.Error.fail Invalid ~op:"checker" "Analysis.analyze: fixpoint did not converge";
    List.iter (analyze_func info) prog.Ir.funcs
  done;
  info

let vas_in info site = get info.ins site
let vas_valid info ~func reg = get info.valid (func, reg)

type reason =
  | Deref_ambiguous_target
  | Deref_ambiguous_current
  | Deref_wrong_vas
  | Store_pointer_escape
  | Assert_failed of string

type violation = { site : site; instr : Ir.instr; reasons : reason list }

(* Deref of p at site i is unsafe unless proven otherwise.
   Pointers valid only in the common region are always safe (stack,
   globals, function pointers). *)
let deref_reasons info fname site p =
  let vp = vas_valid info ~func:fname p in
  let vin = vas_in info site in
  if Vset.equal vp (Vset.singleton Velt.Common) then []
  else begin
    let r1 =
      if Vset.cardinal vp > 1 || Vset.mem Velt.Unknown vp || Vset.is_empty vp then
        [ Deref_ambiguous_target ]
      else []
    in
    let r2 = if Vset.cardinal vin > 1 then [ Deref_ambiguous_current ] else [] in
    let r3 = if not (Vset.equal vp vin) then [ Deref_wrong_vas ] else [] in
    r1 @ r2 @ r3
  end

(* Store of value q through p: if q may be a pointer, it must either
   target the common region or stay within its own VAS. *)
let store_escape_reasons info fname p q =
  let vp = vas_valid info ~func:fname p in
  let vq = vas_valid info ~func:fname q in
  if Vset.is_empty vq then [] (* q is not a pointer *)
  else if Vset.equal vp (Vset.singleton Velt.Common) then []
  else if Vset.cardinal vp = 1 && Vset.equal vp vq then []
  else [ Store_pointer_escape ]

let violations info =
  let out = ref [] in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iteri
            (fun index instr ->
              let site = { in_func = f.Ir.fname; in_block = b.Ir.label; index } in
              let reasons =
                match instr with
                | Ir.Load (_, p) -> deref_reasons info f.Ir.fname site p
                | Ir.Store (p, q) ->
                  deref_reasons info f.Ir.fname site p
                  @ store_escape_reasons info f.Ir.fname p q
                | Ir.Assert_valid (r, v) ->
                  (* The modal claim holds statically iff every VAS the
                     pointer may be valid in is the asserted one (or the
                     common region, valid everywhere). An empty or
                     unknown validity set cannot be proven. *)
                  let vp = vas_valid info ~func:f.Ir.fname r in
                  let ok =
                    (not (Vset.is_empty vp))
                    && Vset.for_all
                         (function
                           | Velt.V v' -> v' = v
                           | Velt.Common -> true
                           | Velt.Unknown -> false)
                         vp
                  in
                  if ok then [] else [ Assert_failed v ]
                | _ -> []
              in
              if reasons <> [] then out := { site; instr; reasons } :: !out)
            b.Ir.instrs)
        f.Ir.blocks)
    info.prog.Ir.funcs;
  List.rev !out

let stats info =
  let mem_ops = ref 0 in
  List.iter
    (fun (f : Ir.func) ->
      List.iter
        (fun (b : Ir.block) ->
          List.iter
            (function Ir.Load _ | Ir.Store _ -> incr mem_ops | _ -> ())
            b.Ir.instrs)
        f.Ir.blocks)
    info.prog.Ir.funcs;
  (!mem_ops, List.length (violations info))

let pp_reason fmt = function
  | Deref_ambiguous_target -> Format.pp_print_string fmt "ambiguous target VAS"
  | Deref_ambiguous_current -> Format.pp_print_string fmt "ambiguous current VAS"
  | Deref_wrong_vas -> Format.pp_print_string fmt "target may differ from current VAS"
  | Store_pointer_escape -> Format.pp_print_string fmt "pointer may escape its VAS"
  | Assert_failed v -> Format.fprintf fmt "cannot prove pointer valid in %s" v

let pp_violation fmt v =
  Format.fprintf fmt "%s/%s[%d]: %a  (%a)" v.site.in_func v.site.in_block v.site.index
    Ir.pp_instr v.instr
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f "; ") pp_reason)
    v.reasons
