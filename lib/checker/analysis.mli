(** The VAS dataflow analysis (§4.3).

    Computes, by a monotone union fixpoint over the interprocedural
    CFG:
    - [vas_in]/[vas_out]: the set of VASes that may be *current* before
      and after each instruction (Fig. 5's VAS_in/VAS_out);
    - [vas_valid]: for each SSA register, the set of VASes a pointer in
      it may be valid in, including the special elements [Common] (the
      common region: stack, globals) and [Unknown] (statically
      untrackable, e.g. loaded through the common region).

    From these it classifies unsafe loads and stores per the paper's
    three deref conditions and two store conditions; the transform
    inserts checks exactly at the flagged sites. *)

module Velt : sig
  type t = V of string | Common | Unknown

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Vset : Set.S with type elt = Velt.t

val primary : string
(** Reserved name of the process's initial address space. *)

type site = { in_func : string; in_block : string; index : int }
(** [index] is the instruction's position within its block. *)

type info

val analyze : Ir.program -> info
(** Requires a validated program. *)

val vas_in : info -> site -> Vset.t
val vas_valid : info -> func:string -> Ir.reg -> Vset.t

type reason =
  | Deref_ambiguous_target  (** |valid(p)| > 1 or unknown (cond. 1) *)
  | Deref_ambiguous_current  (** |VAS_in| > 1 (cond. 2) *)
  | Deref_wrong_vas  (** valid(p) <> VAS_in (cond. 3) *)
  | Store_pointer_escape  (** storing a pointer where neither store condition holds *)
  | Assert_failed of string
      (** an [assert_valid r, v] whose register cannot be proven valid in [v] *)

type violation = { site : site; instr : Ir.instr; reasons : reason list }

val violations : info -> violation list
(** Sites needing runtime checks, in program order. Includes static
    failures of [assert_valid] modal assertions ([Assert_failed]). *)

val pp_reason : Format.formatter -> reason -> unit

val stats : info -> int * int
(** [(memory_ops, flagged)] — how many loads/stores exist vs how many
    needed checks (the analysis's precision headline). *)

val pp_violation : Format.formatter -> violation -> unit
