(* Line-oriented recursive-descent parser for the safety IR. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let is_ident s = s <> "" && String.for_all is_ident_char s && not (s.[0] >= '0' && s.[0] <= '9')

let strip line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  String.trim line

(* Split on any whitespace/commas, keeping bracket groups whole enough
   for phi parsing (phi is handled specially). *)
let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char ',')
  |> List.filter (fun s -> s <> "")

type line_kind =
  | Lfunc of string * string list
  | Llabel of string
  | Linstr of Ir.instr
  | Lterm of Ir.terminator

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_call_rhs rhs =
  (* f(a, b) or f() *)
  match String.index_opt rhs '(' with
  | None -> fail "call: expected '('"
  | Some i ->
    let fname = String.trim (String.sub rhs 0 i) in
    if not (is_ident fname) then fail "call: bad function name %S" fname;
    let rest = String.sub rhs (i + 1) (String.length rhs - i - 1) in
    (match String.index_opt rest ')' with
    | None -> fail "call: expected ')'"
    | Some j ->
      let args = String.sub rest 0 j in
      let args = tokens args in
      List.iter (fun a -> if not (is_ident a) then fail "call: bad argument %S" a) args;
      (fname, args))

let parse_phi_rhs rhs =
  (* phi [label: reg] [label: reg] ... *)
  let rec go pos acc =
    match String.index_from_opt rhs pos '[' with
    | None -> List.rev acc
    | Some i -> (
      match String.index_from_opt rhs i ']' with
      | None -> fail "phi: unclosed '['"
      | Some j -> (
        let inner = String.sub rhs (i + 1) (j - i - 1) in
        match String.split_on_char ':' inner with
        | [ label; reg ] ->
          let label = String.trim label and reg = String.trim reg in
          if not (is_ident label && is_ident reg) then fail "phi: bad edge %S" inner;
          go (j + 1) ((label, reg) :: acc)
        | _ -> fail "phi: expected [label: reg]"))
  in
  match go 0 [] with [] -> fail "phi: no incoming edges" | edges -> edges

let parse_rhs x rhs =
  let rhs = String.trim rhs in
  match tokens rhs with
  | [ "alloca" ] -> Ir.Alloca x
  | [ "global" ] -> Ir.Global x
  | [ "malloc" ] -> Ir.Malloc x
  | [ "vcast"; y; v ] when is_ident y && is_ident v -> Ir.Vcast (x, y, v)
  | [ y ] when is_ident y -> Ir.Copy (x, y)
  | [ n ] when int_of_string_opt n <> None -> Ir.Const (x, int_of_string n)
  | [ deref ] when String.length deref > 1 && deref.[0] = '*' ->
    let y = String.sub deref 1 (String.length deref - 1) in
    if is_ident y then Ir.Load (x, y) else fail "load: bad register %S" y
  | "phi" :: _ -> Ir.Phi (x, parse_phi_rhs rhs)
  | "call" :: _ ->
    let rhs = String.trim (String.sub rhs 4 (String.length rhs - 4)) in
    let fname, args = parse_call_rhs rhs in
    Ir.Call (Some x, fname, args)
  | _ -> fail "cannot parse right-hand side %S" rhs

let classify line =
  if String.length line > 5 && String.sub line 0 5 = "func " then begin
    (* func name(p1, p2): *)
    let rest = String.sub line 5 (String.length line - 5) in
    let rest =
      match String.rindex_opt rest ':' with
      | Some i when i = String.length rest - 1 -> String.sub rest 0 i
      | _ -> fail "func: missing trailing ':'"
    in
    let fname, params = parse_call_rhs rest in
    Lfunc (fname, params)
  end
  else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
    let label = String.sub line 0 (String.length line - 1) in
    if is_ident label then Llabel label else fail "bad label %S" label
  end
  else
    match tokens line with
    | [ "switch"; v ] when is_ident v -> Linstr (Ir.Switch v)
    | [ "jmp"; l ] when is_ident l -> Lterm (Ir.Jmp l)
    | [ "br"; r; l1; l2 ] when is_ident r && is_ident l1 && is_ident l2 ->
      Lterm (Ir.Br (r, l1, l2))
    | [ "ret" ] -> Lterm (Ir.Ret None)
    | [ "ret"; r ] when is_ident r -> Lterm (Ir.Ret (Some r))
    | [ "check_deref"; r ] when is_ident r -> Linstr (Ir.Check_deref r)
    | [ "check_store"; p; q ] when is_ident p && is_ident q -> Linstr (Ir.Check_store (p, q))
    | [ "assert_valid"; r; v ] when is_ident r && is_ident v -> Linstr (Ir.Assert_valid (r, v))
    | "call" :: _ ->
      let rhs = String.trim (String.sub line 4 (String.length line - 4)) in
      let fname, args = parse_call_rhs rhs in
      Linstr (Ir.Call (None, fname, args))
    | store :: "=" :: _ when String.length store > 1 && store.[0] = '*' ->
      let p = String.sub store 1 (String.length store - 1) in
      let eq = String.index line '=' in
      let q = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
      if is_ident p && is_ident q then Linstr (Ir.Store (p, q))
      else fail "store: bad operands"
    | x :: "=" :: _ when is_ident x ->
      let eq = String.index line '=' in
      Linstr (parse_rhs x (String.sub line (eq + 1) (String.length line - eq - 1)))
    | _ -> fail "cannot parse %S" line

let parse text =
  let lines = String.split_on_char '\n' text in
  (* Accumulators, reversed. *)
  let funcs = ref [] in
  let cur_func : (string * string list) option ref = ref None in
  let blocks = ref [] in
  let cur_label = ref None in
  let instrs = ref [] in
  let flush_block ~line_no term =
    match !cur_label with
    | None -> (
      match term with
      | Some _ -> fail "line %d: terminator outside a block" line_no
      | None -> if !instrs <> [] then fail "line %d: instructions outside a block" line_no)
    | Some label ->
      let term =
        match term with
        | Some t -> t
        | None -> fail "line %d: block %s has no terminator" line_no label
      in
      blocks := { Ir.label; instrs = List.rev !instrs; term } :: !blocks;
      cur_label := None;
      instrs := []
  in
  let flush_func ~line_no =
    (match (!cur_label, !cur_func) with
    | Some l, _ -> fail "line %d: block %s has no terminator" line_no l
    | None, Some (fname, params) ->
      funcs := { Ir.fname; params; blocks = List.rev !blocks } :: !funcs;
      blocks := [];
      cur_func := None
    | None, None -> ())
  in
  try
    List.iteri
      (fun i raw ->
        let line_no = i + 1 in
        let line = strip raw in
        if line <> "" then
          let wrap f = try f () with Parse_error e -> fail "line %d: %s" line_no e in
          wrap (fun () ->
              match classify line with
              | Lfunc (fname, params) ->
                flush_func ~line_no;
                cur_func := Some (fname, params)
              | Llabel l ->
                if !cur_func = None then fail "line %d: block outside a function" line_no;
                (match !cur_label with
                | Some prev -> fail "line %d: block %s has no terminator" line_no prev
                | None -> ());
                cur_label := Some l
              | Linstr instr ->
                if !cur_label = None then fail "line %d: instruction outside a block" line_no;
                instrs := instr :: !instrs
              | Lterm term -> flush_block ~line_no (Some term)))
      lines;
    flush_func ~line_no:(List.length lines);
    let prog = { Ir.funcs = List.rev !funcs } in
    if prog.Ir.funcs = [] then Error "no functions"
    else
      match Ir.validate prog with Ok () -> Ok prog | Error e -> Error ("invalid program: " ^ e)
  with Parse_error e -> Error e

let parse_file_contents = parse
