type reg = string
type label = string

type instr =
  | Switch of string
  | Vcast of reg * reg * string
  | Alloca of reg
  | Global of reg
  | Malloc of reg
  | Const of reg * int
  | Copy of reg * reg
  | Phi of reg * (label * reg) list
  | Load of reg * reg
  | Store of reg * reg
  | Call of reg option * string * reg list
  | Check_deref of reg
  | Check_store of reg * reg
  | Assert_valid of reg * string

type terminator = Jmp of label | Br of reg * label * label | Ret of reg option
type block = { label : label; instrs : instr list; term : terminator }
type func = { fname : string; params : reg list; blocks : block list }
type program = { funcs : func list }

let func p name = List.find (fun f -> f.fname = name) p.funcs

let entry_block f =
  match f.blocks with b :: _ -> b | [] -> Sj_abi.Error.fail Invalid ~op:"checker" "Ir.entry_block: empty function"

let block f label =
  try List.find (fun b -> b.label = label) f.blocks
  with Not_found -> Sj_abi.Error.failf Invalid ~op:"checker" "Ir.block: no block %s in %s" label f.fname

let defs_of_instr = function
  | Switch _ | Store _ | Check_deref _ | Check_store _ | Assert_valid _ -> []
  | Vcast (x, _, _)
  | Alloca x
  | Global x
  | Malloc x
  | Const (x, _)
  | Copy (x, _)
  | Phi (x, _)
  | Load (x, _) ->
    [ x ]
  | Call (Some x, _, _) -> [ x ]
  | Call (None, _, _) -> []

let uses_of_instr = function
  | Switch _ | Alloca _ | Global _ | Malloc _ | Const _ -> []
  | Vcast (_, y, _) | Copy (_, y) | Load (_, y) | Check_deref y | Assert_valid (y, _) -> [ y ]
  | Phi (_, ins) -> List.map snd ins
  | Store (x, y) | Check_store (x, y) -> [ x; y ]
  | Call (_, _, args) -> args

let uses_of_term = function Jmp _ -> [] | Br (r, _, _) -> [ r ] | Ret r -> Option.to_list r

let predecessors f label =
  List.filter_map
    (fun b ->
      let targets =
        match b.term with Jmp l -> [ l ] | Br (_, l1, l2) -> [ l1; l2 ] | Ret _ -> []
      in
      if List.mem label targets then Some b.label else None)
    f.blocks

let validate p =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_func f =
    if f.blocks = [] then err "%s: no blocks" f.fname
    else begin
      (* Single assignment; collect all definitions. *)
      let defined = Hashtbl.create 16 in
      List.iter (fun r -> Hashtbl.replace defined r ()) f.params;
      let* () =
        List.fold_left
          (fun acc b ->
            let* () = acc in
            List.fold_left
              (fun acc i ->
                let* () = acc in
                List.fold_left
                  (fun acc d ->
                    let* () = acc in
                    if Hashtbl.mem defined d then err "%s: %s assigned twice" f.fname d
                    else begin
                      Hashtbl.replace defined d ();
                      Ok ()
                    end)
                  (Ok ()) (defs_of_instr i))
              (Ok ()) b.instrs)
          (Ok ()) f.blocks
      in
      (* All uses defined somewhere; branch targets exist; phi sources
         are predecessors. *)
      let labels = List.map (fun b -> b.label) f.blocks in
      List.fold_left
        (fun acc b ->
          let* () = acc in
          let* () =
            List.fold_left
              (fun acc i ->
                let* () = acc in
                let* () =
                  List.fold_left
                    (fun acc u ->
                      let* () = acc in
                      if Hashtbl.mem defined u then Ok ()
                      else err "%s/%s: use of undefined %s" f.fname b.label u)
                    (Ok ()) (uses_of_instr i)
                in
                match i with
                | Phi (_, ins) ->
                  let preds = predecessors f b.label in
                  List.fold_left
                    (fun acc (src, _) ->
                      let* () = acc in
                      if List.mem src preds then Ok ()
                      else err "%s/%s: phi source %s is not a predecessor" f.fname b.label src)
                    (Ok ()) ins
                | _ -> Ok ())
              (Ok ()) b.instrs
          in
          let* () =
            List.fold_left
              (fun acc u ->
                let* () = acc in
                if Hashtbl.mem defined u then Ok ()
                else err "%s/%s: terminator uses undefined %s" f.fname b.label u)
              (Ok ()) (uses_of_term b.term)
          in
          match b.term with
          | Jmp l -> if List.mem l labels then Ok () else err "%s: missing block %s" f.fname l
          | Br (_, l1, l2) ->
            if List.mem l1 labels && List.mem l2 labels then Ok ()
            else err "%s: missing branch target" f.fname
          | Ret _ -> Ok ())
        (Ok ()) f.blocks
    end
  in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        check_func f)
      (Ok ()) p.funcs
  in
  (* Call targets exist with matching arity. *)
  List.fold_left
    (fun acc f ->
      let* () = acc in
      List.fold_left
        (fun acc b ->
          let* () = acc in
          List.fold_left
            (fun acc i ->
              let* () = acc in
              match i with
              | Call (_, callee, args) -> (
                match List.find_opt (fun g -> g.fname = callee) p.funcs with
                | None -> err "call to unknown function %s" callee
                | Some g ->
                  if List.length g.params = List.length args then Ok ()
                  else err "call to %s: arity mismatch" callee)
              | _ -> Ok ())
            (Ok ()) b.instrs)
        (Ok ()) f.blocks)
    (Ok ()) p.funcs

let pp_instr fmt = function
  | Switch v -> Format.fprintf fmt "switch %s" v
  | Vcast (x, y, v) -> Format.fprintf fmt "%s = vcast %s %s" x y v
  | Alloca x -> Format.fprintf fmt "%s = alloca" x
  | Global x -> Format.fprintf fmt "%s = global" x
  | Malloc x -> Format.fprintf fmt "%s = malloc" x
  | Const (x, n) -> Format.fprintf fmt "%s = %d" x n
  | Copy (x, y) -> Format.fprintf fmt "%s = %s" x y
  | Phi (x, ins) ->
    Format.fprintf fmt "%s = phi %s" x
      (String.concat ", " (List.map (fun (l, r) -> Printf.sprintf "[%s: %s]" l r) ins))
  | Load (x, y) -> Format.fprintf fmt "%s = *%s" x y
  | Store (x, y) -> Format.fprintf fmt "*%s = %s" x y
  | Call (Some x, f, args) -> Format.fprintf fmt "%s = %s(%s)" x f (String.concat ", " args)
  | Call (None, f, args) -> Format.fprintf fmt "%s(%s)" f (String.concat ", " args)
  | Check_deref r -> Format.fprintf fmt "check_deref %s" r
  | Check_store (x, y) -> Format.fprintf fmt "check_store %s, %s" x y
  | Assert_valid (r, v) -> Format.fprintf fmt "assert_valid %s, %s" r v

let pp_term fmt = function
  | Jmp l -> Format.fprintf fmt "jmp %s" l
  | Br (r, l1, l2) -> Format.fprintf fmt "br %s, %s, %s" r l1 l2
  | Ret (Some r) -> Format.fprintf fmt "ret %s" r
  | Ret None -> Format.fprintf fmt "ret"

let pp_program fmt p =
  List.iter
    (fun f ->
      Format.fprintf fmt "func %s(%s):@." f.fname (String.concat ", " f.params);
      List.iter
        (fun b ->
          Format.fprintf fmt "%s:@." b.label;
          List.iter (fun i -> Format.fprintf fmt "  %a@." pp_instr i) b.instrs;
          Format.fprintf fmt "  %a@." pp_term b.term)
        f.blocks)
    p.funcs
