type report = { checks_inserted : int; memory_ops : int; elided : int }

let instrument prog =
  let info = Analysis.analyze prog in
  let flagged = Analysis.violations info in
  let is_flagged site = List.exists (fun (v : Analysis.violation) -> v.site = site) flagged in
  let needs_store_check site =
    List.exists
      (fun (v : Analysis.violation) ->
        v.site = site && List.mem Analysis.Store_pointer_escape v.reasons)
      flagged
  in
  let inserted = ref 0 in
  let rewrite_func (f : Ir.func) =
    let rewrite_block (b : Ir.block) =
      let instrs =
        List.concat
          (List.mapi
             (fun index instr ->
               let site =
                 { Analysis.in_func = f.Ir.fname; in_block = b.Ir.label; index }
               in
               match instr with
               | Ir.Load (_, p) when is_flagged site ->
                 incr inserted;
                 [ Ir.Check_deref p; instr ]
               | Ir.Store (p, q) when is_flagged site ->
                 let checks =
                   (if
                      List.exists
                        (fun (v : Analysis.violation) ->
                          v.site = site
                          && List.exists
                               (function
                                 | Analysis.Store_pointer_escape -> false
                                 | _ -> true)
                               v.reasons)
                        flagged
                    then [ Ir.Check_deref p ]
                    else [])
                   @ if needs_store_check site then [ Ir.Check_store (p, q) ] else []
                 in
                 inserted := !inserted + List.length checks;
                 checks @ [ instr ]
               | _ -> [ instr ])
             b.Ir.instrs)
      in
      { b with Ir.instrs }
    in
    { f with Ir.blocks = List.map rewrite_block f.Ir.blocks }
  in
  let prog' = { Ir.funcs = List.map rewrite_func prog.Ir.funcs } in
  let memory_ops, flagged_count = Analysis.stats info in
  (prog', { checks_inserted = !inserted; memory_ops; elided = memory_ops - flagged_count })

(* Redundant-check elimination: see the interface. The "covered" set
   holds facts re-established since the last VAS change: `D p` (p is
   valid here) and `S (p, q)` (storing q through p is legal here). *)
let optimize prog =
  let removed = ref 0 in
  let rewrite_block (b : Ir.block) =
    let covered : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let deref_key p = "D:" ^ p in
    let store_key p q = "S:" ^ p ^ ":" ^ q in
    let instrs =
      List.filter
        (fun instr ->
          match instr with
          | Ir.Switch _ | Ir.Call _ ->
            (* The current VAS may change: previous checks no longer
               justify skipping new ones. *)
            Hashtbl.reset covered;
            true
          | Ir.Check_deref p ->
            if Hashtbl.mem covered (deref_key p) then begin
              incr removed;
              false
            end
            else begin
              Hashtbl.replace covered (deref_key p) ();
              true
            end
          | Ir.Check_store (p, q) ->
            if Hashtbl.mem covered (store_key p q) then begin
              incr removed;
              false
            end
            else begin
              Hashtbl.replace covered (store_key p q) ();
              (* A full store check implies the target is dereferenceable. *)
              Hashtbl.replace covered (deref_key p) ();
              true
            end
          | Ir.Vcast _ | Ir.Alloca _ | Ir.Global _ | Ir.Malloc _ | Ir.Const _ | Ir.Copy _
          | Ir.Phi _ | Ir.Load _ | Ir.Store _ | Ir.Assert_valid _ ->
            true)
        b.Ir.instrs
    in
    { b with Ir.instrs }
  in
  let prog' =
    { Ir.funcs = List.map (fun f -> { f with Ir.blocks = List.map rewrite_block f.Ir.blocks }) prog.Ir.funcs }
  in
  (prog', !removed)

let instrument_optimized prog =
  let instrumented, report = instrument prog in
  let optimized, removed = optimize instrumented in
  (optimized, { report with checks_inserted = report.checks_inserted - removed })
