type space = Common_region | In_vas of string
type value = Int of int | Ptr of { space : space; addr : int }

type outcome =
  | Finished of value option
  | Trapped of { site : string; what : string }
  | Faulted of { site : string; what : string }
  | Type_fault of { site : string; what : string }
  | Out_of_fuel

exception Trap of string * string
exception Fault of string * string
exception Tfault of string * string
exception Fuel

type state = {
  prog : Ir.program;
  mem : (space * int, value) Hashtbl.t;
  mutable current : string; (* current VAS name *)
  mutable next_addr : int;
  mutable fuel : int;
}

let space_name = function Common_region -> "common" | In_vas v -> v

(* The §3.3 rules, dynamically. *)
let deref_ok st = function
  | Common_region -> true
  | In_vas v -> v = st.current

let store_value_ok p_space q =
  match q with
  | Int _ -> true
  | Ptr q -> (
    match (p_space, q.space) with
    | Common_region, _ -> true (* common region may hold any pointer *)
    | In_vas pv, In_vas qv -> pv = qv (* VAS memory only holds its own pointers *)
    | In_vas _, Common_region -> false (* common pointers must not escape *))

let run_function ?(fuel = 100_000) prog ~name ~args =
  let st =
    { prog; mem = Hashtbl.create 256; current = Analysis.primary; next_addr = 16; fuel }
  in
  let rec exec_func fname args =
    let f = Ir.func st.prog fname in
    if List.length args <> List.length f.Ir.params then
      Sj_abi.Error.failf Invalid ~op:"checker" "Interp: arity mismatch calling %s" fname;
    let regs : (string, value) Hashtbl.t = Hashtbl.create 16 in
    List.iter2 (fun p a -> Hashtbl.replace regs p a) f.Ir.params args;
    let get r =
      match Hashtbl.find_opt regs r with
      | Some v -> v
      | None -> Sj_abi.Error.failf Invalid ~op:"checker" "Interp: %s/%s unbound" fname r
    in
    let set r v = Hashtbl.replace regs r v in
    let rec exec_block (b : Ir.block) ~came_from =
      let site idx = Printf.sprintf "%s/%s[%d]" fname b.Ir.label idx in
      List.iteri
        (fun idx instr ->
          if st.fuel <= 0 then raise Fuel;
          st.fuel <- st.fuel - 1;
          match instr with
          | Ir.Switch v -> st.current <- v
          | Ir.Vcast (x, y, v) -> (
            match get y with
            | Ptr p -> set x (Ptr { p with space = In_vas v })
            | Int _ as i -> set x i)
          | Ir.Alloca x | Ir.Global x ->
            st.next_addr <- st.next_addr + 16;
            set x (Ptr { space = Common_region; addr = st.next_addr })
          | Ir.Malloc x ->
            st.next_addr <- st.next_addr + 16;
            set x (Ptr { space = In_vas st.current; addr = st.next_addr })
          | Ir.Const (x, n) -> set x (Int n)
          | Ir.Copy (x, y) -> set x (get y)
          | Ir.Phi (x, ins) -> (
            match came_from with
            | None -> Sj_abi.Error.fail Invalid ~op:"checker" "Interp: phi in entry block"
            | Some from -> (
              match List.assoc_opt from ins with
              | Some y -> set x (get y)
              | None -> Sj_abi.Error.fail Invalid ~op:"checker" "Interp: phi has no edge for predecessor"))
          | Ir.Load (x, p) -> (
            match get p with
            | Int _ -> raise (Tfault (site idx, "load through integer"))
            | Ptr ptr ->
              if not (deref_ok st ptr.space) then
                raise
                  (Fault
                     ( site idx,
                       Printf.sprintf "load from %s while in %s" (space_name ptr.space)
                         st.current ));
              set x
                (Option.value
                   (Hashtbl.find_opt st.mem (ptr.space, ptr.addr))
                   ~default:(Int 0)))
          | Ir.Store (p, q) -> (
            match get p with
            | Int _ -> raise (Tfault (site idx, "store through integer"))
            | Ptr ptr ->
              if not (deref_ok st ptr.space) then
                raise
                  (Fault
                     ( site idx,
                       Printf.sprintf "store to %s while in %s" (space_name ptr.space)
                         st.current ));
              if not (store_value_ok ptr.space (get q)) then
                raise (Fault (site idx, "pointer escaped its VAS"));
              Hashtbl.replace st.mem (ptr.space, ptr.addr) (get q))
          | Ir.Call (res, callee, cargs) -> (
            let v = exec_func callee (List.map get cargs) in
            match (res, v) with
            | Some x, Some v -> set x v
            | Some x, None -> set x (Int 0)
            | None, _ -> ())
          | Ir.Check_deref p -> (
            match get p with
            | Int _ -> raise (Trap (site idx, "check: not a pointer"))
            | Ptr ptr ->
              if not (deref_ok st ptr.space) then
                raise
                  (Trap
                     ( site idx,
                       Printf.sprintf "check caught deref of %s while in %s"
                         (space_name ptr.space) st.current )))
          | Ir.Check_store (p, q) -> (
            match get p with
            | Int _ -> raise (Trap (site idx, "check: not a pointer"))
            | Ptr ptr ->
              if not (deref_ok st ptr.space) then
                raise (Trap (site idx, "check caught store target"));
              if not (store_value_ok ptr.space (get q)) then
                raise (Trap (site idx, "check caught pointer escape")))
          | Ir.Assert_valid (p, v) -> (
            match get p with
            | Int _ ->
              raise (Trap (site idx, Printf.sprintf "assert_valid: not a pointer (asserted %s)" v))
            | Ptr ptr -> (
              match ptr.space with
              | Common_region -> () (* the common region is mapped in every VAS *)
              | In_vas v' ->
                if v' <> v then
                  raise
                    (Trap
                       ( site idx,
                         Printf.sprintf "assert_valid: pointer valid in %s, asserted %s" v' v )))))
        b.Ir.instrs;
      if st.fuel <= 0 then raise Fuel;
      st.fuel <- st.fuel - 1;
      match b.Ir.term with
      | Ir.Jmp l -> exec_block (Ir.block f l) ~came_from:(Some b.Ir.label)
      | Ir.Br (r, l1, l2) ->
        let taken =
          match get r with Int 0 -> l2 | Int _ -> l1 | Ptr _ -> l1 (* non-null *)
        in
        exec_block (Ir.block f taken) ~came_from:(Some b.Ir.label)
      | Ir.Ret (Some r) -> Some (get r)
      | Ir.Ret None -> None
    in
    exec_block (Ir.entry_block f) ~came_from:None
  in
  try Finished (exec_func name args) with
  | Trap (site, what) -> Trapped { site; what }
  | Fault (site, what) -> Faulted { site; what }
  | Tfault (site, what) -> Type_fault { site; what }
  | Fuel -> Out_of_fuel

let run ?fuel prog =
  match prog.Ir.funcs with
  | main :: _ -> run_function ?fuel prog ~name:main.Ir.fname ~args:[]
  | [] -> Sj_abi.Error.fail Invalid ~op:"checker" "Interp.run: empty program"
