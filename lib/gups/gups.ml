open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Prot = Sj_paging.Prot
module Process = Sj_kernel.Process
module Vmspace = Sj_kernel.Vmspace
module Vm_object = Sj_kernel.Vm_object
module Layout = Sj_kernel.Layout
module Api = Sj_core.Api
module Registry = Sj_core.Registry
module Segment = Sj_core.Segment

type design = Spacejmp | Map | Mp

type config = {
  platform : Platform.t;
  windows : int;
  window_size : int;
  updates_per_set : int;
  window_visits : int;
  tags : bool;
  mlp : int;
  seed : int;
}

let default_config =
  {
    platform = Platform.m3;
    windows = 8;
    window_size = Size.mib 64;
    updates_per_set = 64;
    window_visits = 200;
    tags = false;
    mlp = 8;
    seed = 7;
  }

type result = {
  design : design;
  updates : int;
  cycles : int;
  mups : float;
  switches_per_sec : float;
  tlb_misses_per_sec : float;
  seconds : float;
}

let design_name = function Spacejmp -> "SpaceJMP" | Map -> "MAP" | Mp -> "MP"
let pp_design fmt d = Format.pp_print_string fmt (design_name d)

(* Apply one update set to a window through a core, modelling
   memory-level parallelism: real GUPS kernels keep ~mlp independent
   update streams in flight, so the serially accumulated access cycles
   are divided by mlp (switching and RPC costs are *not* — they are
   inherently serial). *)
let apply_updates core rng ~window_base ~window_size ~count ~mlp =
  let before = Core.cycles core in
  let slots = window_size / 8 in
  for _ = 1 to count do
    let idx = Rng.int rng slots in
    let va = window_base + (idx * 8) in
    (* Fused load-xor-store: cycle-identical to load64 + store64 but
       keeps the update value out of the caller (see Core.xor64). *)
    Core.xor64 core ~va (Rng.bits64 rng)
  done;
  let delta = Core.cycles core - before in
  (* Refund the overlap the serial model cannot express. *)
  Core.charge core (-(delta - ((delta + mlp - 1) / mlp)))

let finish ~design ~cfg ~machine ~cycles ~switches ~tlb_misses =
  let cost = Machine.cost machine in
  let seconds = Sj_machine.Cost_model.cycles_to_seconds cost cycles in
  let updates = cfg.window_visits * cfg.updates_per_set in
  {
    design;
    updates;
    cycles;
    mups = float_of_int updates /. seconds /. 1e6;
    switches_per_sec = (if seconds > 0.0 then float_of_int switches /. seconds else 0.0);
    tlb_misses_per_sec = (if seconds > 0.0 then float_of_int tlb_misses /. seconds else 0.0);
    seconds;
  }

(* ---------- SpaceJMP design ---------- *)

let run_spacejmp cfg =
  let machine = Machine.create cfg.platform in
  let sys = Api.boot ~backend:Api.Dragonfly machine in
  let proc = Process.create ~name:"gups" machine in
  let core = Machine.core machine 0 in
  let ctx = Api.context sys proc core in
  let rng = Rng.create ~seed:cfg.seed in
  (* One VAS per window; window segments get cached translations so
     attach cost stays off the benchmark loop (§4.1). *)
  let handles =
    Array.init cfg.windows (fun w ->
        let vas = Api.vas_create ctx ~name:(Printf.sprintf "gups.v%d" w) ~mode:0o600 in
        if cfg.tags then Api.vas_ctl ctx (`Request_tag vas);
        let seg =
          Api.seg_alloc_anywhere ctx ~name:(Printf.sprintf "gups.win%d" w)
            ~size:cfg.window_size ~mode:0o600
        in
        Api.seg_ctl ctx (`Cache_translations seg);
        Api.seg_attach ctx vas seg ~prot:Prot.rw;
        (Api.vas_attach ctx vas, Segment.base seg))
  in
  let reg = Api.registry sys in
  Registry.reset_stats reg;
  Sj_tlb.Tlb.reset_stats (Core.tlb core);
  (* Like the paper's kernel, only switch when the target window
     differs from the current one. *)
  let current = ref (-1) in
  let t0 = Core.cycles core in
  for _ = 1 to cfg.window_visits do
    let w = Rng.int rng cfg.windows in
    let vh, base = handles.(w) in
    if w <> !current then begin
      Api.vas_switch ctx vh;
      current := w
    end;
    apply_updates core rng ~window_base:base ~window_size:cfg.window_size
      ~count:cfg.updates_per_set ~mlp:cfg.mlp
  done;
  let cycles = Core.cycles core - t0 in
  finish ~design:Spacejmp ~cfg ~machine ~cycles
    ~switches:(Registry.switch_count reg)
    ~tlb_misses:(Sj_tlb.Tlb.stats (Core.tlb core)).misses

(* ---------- MAP design (mmap/munmap on the critical path) ---------- *)

let run_map cfg =
  let machine = Machine.create cfg.platform in
  let proc = Process.create ~name:"gups-map" machine in
  let core = Machine.core machine 0 in
  let vms = Process.primary_vmspace proc in
  Core.set_page_table core (Some (Vmspace.page_table vms));
  let rng = Rng.create ~seed:cfg.seed in
  (* The table's windows live in the kernel's page cache (VM objects);
     only one can be mapped into the window region at a time. *)
  let objects =
    Array.init cfg.windows (fun w ->
        Vm_object.create
          ~name:(Printf.sprintf "gups.obj%d" w)
          machine ~size:cfg.window_size ~charge_to:None)
  in
  let window_base = Layout.next_global_base (Machine.sim_ctx machine) ~size:cfg.window_size in
  (* Window 0 starts mapped (steady state before the timer). *)
  Vmspace.map_object vms ~charge_to:None ~base:window_base ~prot:Prot.rw objects.(0);
  let current = ref 0 in
  Sj_tlb.Tlb.reset_stats (Core.tlb core);
  let t0 = Core.cycles core in
  for _ = 1 to cfg.window_visits do
    let w = Rng.int rng cfg.windows in
    if w <> !current then begin
      let c = Machine.cost machine in
      if !current >= 0 then begin
        Vmspace.unmap_region vms ~charge_to:(Some core) ~base:window_base;
        (* munmap requires a TLB shootdown of the range. *)
        Core.charge core c.syscall_generic;
        Sj_tlb.Tlb.flush_nonglobal (Core.tlb core)
      end;
      Core.charge core c.syscall_generic;
      Vmspace.map_object vms ~charge_to:(Some core) ~base:window_base ~prot:Prot.rw
        objects.(w);
      current := w
    end;
    apply_updates core rng ~window_base ~window_size:cfg.window_size
      ~count:cfg.updates_per_set ~mlp:cfg.mlp
  done;
  let cycles = Core.cycles core - t0 in
  finish ~design:Map ~cfg ~machine ~cycles ~switches:0
    ~tlb_misses:(Sj_tlb.Tlb.stats (Core.tlb core)).misses

(* ---------- MP design (multi-process message passing) ---------- *)

let run_mp cfg =
  let machine = Machine.create cfg.platform in
  let cores_total = Platform.total_cores cfg.platform in
  let oversubscribed = cfg.windows > cores_total in
  let master_core = Machine.core machine 0 in
  (* The master holds window 0 in its own address space; remote slaves
     hold the rest. *)
  let master_proc = Process.create ~name:"master" machine in
  let master_base = 0x2000_0000 in
  let master_obj =
    Vm_object.create ~name:"win0" machine ~size:cfg.window_size ~charge_to:None
  in
  Vmspace.map_object (Process.primary_vmspace master_proc) ~charge_to:None ~base:master_base
    ~prot:Prot.rw master_obj;
  Core.set_page_table master_core
    (Some (Vmspace.page_table (Process.primary_vmspace master_proc)));
  (* Each slave owns one window in its private address space and
     busy-waits on its channel. Slaves share physical cores round-robin
     when windows exceed cores. *)
  let slaves =
    Array.init (max 0 (cfg.windows - 1)) (fun w ->
        let w = w + 1 in
        let proc = Process.create ~name:(Printf.sprintf "slave%d" w) machine in
        let obj =
          Vm_object.create ~name:(Printf.sprintf "win%d" w) machine ~size:cfg.window_size
            ~charge_to:None
        in
        let base = 0x2000_0000 in
        Vmspace.map_object (Process.primary_vmspace proc) ~charge_to:None ~base ~prot:Prot.rw
          obj;
        let core = Machine.core machine (1 + (w mod (cores_total - 1))) in
        (proc, core, base))
  in
  let rng = Rng.create ~seed:cfg.seed in
  let c = Machine.cost machine in
  let line = cfg.platform.line in
  (* Which slave's address space is installed on each core. *)
  let resident : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Sj_tlb.Tlb.reset_stats (Core.tlb master_core);
  let sw_overhead = 450 and context_switch = 2600 in
  let t0 = Core.cycles master_core in
  for _ = 1 to cfg.window_visits do
    let w = Rng.int rng cfg.windows in
    if w = 0 then
      (* Local window: no RPC. *)
      apply_updates master_core rng ~window_base:master_base ~window_size:cfg.window_size
        ~count:cfg.updates_per_set ~mlp:cfg.mlp
    else begin
    let proc, slave_core, base = slaves.(w - 1) in
    (* Request: updates_per_set (index, value) pairs. *)
    let req_bytes = cfg.updates_per_set * 16 in
    let req_lines = 1 + ((req_bytes + line - 1) / line) in
    let xfer =
      if Core.socket slave_core = Core.socket master_core then c.cacheline_intra
      else c.cacheline_cross
    in
    (* Master marshals and sends. *)
    Core.charge master_core (sw_overhead + (req_lines * c.l1_hit));
    (* Slave receives (pulls lines), applies the batch, replies; the
       master busy-waits, so all of it lands on the master's clock. *)
    let slave_before = Core.cycles slave_core in
    (* A descheduled slave must be re-installed (and on oversubscribed
       cores this happens on every batch). *)
    (match Hashtbl.find_opt resident (Core.id slave_core) with
    | Some r when r = w -> ()
    | Some _ | None ->
      Core.set_page_table slave_core
        (Some (Vmspace.page_table (Process.primary_vmspace proc)));
      Hashtbl.replace resident (Core.id slave_core) w);
    apply_updates slave_core rng ~window_base:base ~window_size:cfg.window_size
      ~count:cfg.updates_per_set ~mlp:cfg.mlp;
    let slave_apply = Core.cycles slave_core - slave_before in
    let sched = if oversubscribed then 2 * context_switch else 0 in
    Core.charge master_core
      (sw_overhead + (req_lines * xfer) + slave_apply + sched (* slave side *)
      + sw_overhead + xfer (* reply line back *))
    end
  done;
  let cycles = Core.cycles master_core - t0 in
  finish ~design:Mp ~cfg ~machine ~cycles ~switches:0
    ~tlb_misses:(Sj_tlb.Tlb.stats (Core.tlb master_core)).misses

let run cfg ~design =
  match design with Spacejmp -> run_spacejmp cfg | Map -> run_map cfg | Mp -> run_mp cfg
