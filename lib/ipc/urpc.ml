module Machine = Sj_machine.Machine
module Core = Machine.Core

(* Endpoints carry their own machine so one channel can span two
   simulated machines (cluster fabric). Direction is resolved by
   physical identity of the endpoint cores — ids collide across
   machines (both can be core 0), identities never do. *)
type t = {
  machine_a : Machine.t;
  machine_b : Machine.t;
  a : Core.core;
  b : Core.core;
  socket_a : int;
  socket_b : int;
  cross_machine : bool;
  slots : int;
  line : int;
  q_ab : bytes Queue.t; (* messages travelling a -> b *)
  q_ba : bytes Queue.t;
}

let make ~machine_a ~machine_b ~a ~b ~slots =
  {
    machine_a;
    machine_b;
    a;
    b;
    socket_a = Core.socket a;
    socket_b = Core.socket b;
    cross_machine = not (machine_a == machine_b);
    slots;
    line = (Machine.platform machine_a).line;
    q_ab = Queue.create ();
    q_ba = Queue.create ();
  }

let create machine ~a ~b ?(slots = 64) () =
  make ~machine_a:machine ~machine_b:machine ~a ~b ~slots

let create_cross ~a:(machine_a, a) ~b:(machine_b, b) ?(slots = 64) () =
  make ~machine_a ~machine_b ~a ~b ~slots

let cross_socket t = t.socket_a <> t.socket_b
let cross_machine t = t.cross_machine
let slots t = t.slots

let lines_of t len =
  (* One header line carries size + sequence; payload fills the rest. *)
  1 + ((len + t.line - 1) / t.line)

let poll_cost = 20 (* one spin iteration on an already-hot line *)

(* Endpoint [a] sends into q_ab; anything else is the b side (the old
   single-machine behavior, kept for callers that poll with a third
   observer core on the same machine). *)
let dir_of t core = if core == t.a then `AB else `BA

(* Cost model of the machine doing the charging, per direction-of-
   travel endpoint: `AB producer = a side, `AB consumer = b side. *)
let producer_cost t = function
  | `AB -> Machine.cost t.machine_a
  | `BA -> Machine.cost t.machine_b

let consumer_cost t = function
  | `AB -> Machine.cost t.machine_b
  | `BA -> Machine.cost t.machine_a

let send_cost t dir len =
  (* The producer writes lines into its own cache: L1-priced stores —
     plus, across machines, one NIC doorbell/descriptor per message. *)
  let c = producer_cost t dir in
  (lines_of t len * c.Sj_machine.Cost_model.l1_hit)
  + if t.cross_machine then c.net_setup else 0

(* Consumer-side cost of pulling [lines] consecutive lines in one
   burst. Intra-machine the first line is a full interconnect transfer
   and later lines stream behind it (producer and consumer pipeline on
   the ring) at roughly 3/8 of the ping-pong latency; across machines
   the burst is one NIC setup plus wire-rate per line. Draining n
   queued messages as one burst therefore costs less than n separate
   receives — the lines are consecutive, so only the first pays the
   full transfer — which is exactly what the cluster's batched path
   amortizes. *)
let burst_cost t dir lines =
  let c = consumer_cost t dir in
  if t.cross_machine then c.Sj_machine.Cost_model.net_setup + (lines * c.net_link)
  else
    let xfer =
      if cross_socket t then c.Sj_machine.Cost_model.cacheline_cross
      else c.Sj_machine.Cost_model.cacheline_intra
    in
    xfer + ((lines - 1) * (xfer * 3 / 8))

let send t ~from payload =
  let dir = dir_of t from in
  let q = match dir with `AB -> t.q_ab | `BA -> t.q_ba in
  if Queue.length q >= t.slots then failwith "Urpc.send: ring full";
  Core.charge from (send_cost t dir (Bytes.length payload));
  Queue.push (Bytes.copy payload) q

let try_send t ~from payload =
  let dir = dir_of t from in
  let q = match dir with `AB -> t.q_ab | `BA -> t.q_ba in
  if Queue.length q >= t.slots then begin
    (* Producer observed a full ring: one poll of the head line. *)
    Core.charge from poll_cost;
    false
  end
  else begin
    Core.charge from (send_cost t dir (Bytes.length payload));
    Queue.push (Bytes.copy payload) q;
    true
  end

(* Send up to ring-space messages as ONE crossing: the producer writes
   all the lines back-to-back and, across machines, rings the NIC
   doorbell once for the whole descriptor chain — the send-side twin of
   [drain]'s consumer amortization, and the mechanism behind the
   cluster's batched request path. Accepts the longest prefix that
   fits; returns how many messages were enqueued (0 accepted charges
   only the full-ring poll). *)
let send_burst t ~from payloads =
  let dir = dir_of t from in
  let q = match dir with `AB -> t.q_ab | `BA -> t.q_ba in
  let space = t.slots - Queue.length q in
  let accepted = ref 0 in
  let lines = ref 0 in
  (try
     List.iter
       (fun p ->
         if !accepted >= space then raise Exit;
         Queue.push (Bytes.copy p) q;
         lines := !lines + lines_of t (Bytes.length p);
         incr accepted)
       payloads
   with Exit -> ());
  let cost =
    if !accepted = 0 then poll_cost
    else
      let c = producer_cost t dir in
      (!lines * c.Sj_machine.Cost_model.l1_hit)
      + if t.cross_machine then c.net_setup else 0
  in
  Core.charge from cost;
  !accepted

(* The queue [at] receives from travels in the opposite direction of
   the one it sends into. *)
let rx_queue t at =
  match dir_of t at with `AB -> t.q_ba | `BA -> t.q_ab

let rx_dir t at = match dir_of t at with `AB -> `BA | `BA -> `AB

let pending t ~at = Queue.length (rx_queue t at)

(* Connection reset: drop every in-flight message in both directions.
   This is failure-model bookkeeping — the bytes die with the crashed
   endpoint — so nobody is charged for it. *)
let reset t =
  Queue.clear t.q_ab;
  Queue.clear t.q_ba

let recv t ~at =
  match Queue.take_opt (rx_queue t at) with
  | None -> failwith "Urpc.recv: empty ring"
  | Some payload ->
    let lines = lines_of t (Bytes.length payload) in
    Core.charge at (poll_cost + burst_cost t (rx_dir t at) lines);
    payload

let recv_opt t ~at =
  match Queue.take_opt (rx_queue t at) with
  | None ->
    (* A speculative poll that found the ring empty. *)
    Core.charge at poll_cost;
    None
  | Some payload ->
    let lines = lines_of t (Bytes.length payload) in
    Core.charge at (poll_cost + burst_cost t (rx_dir t at) lines);
    Some payload

let drain t ~at ?max () =
  let q = rx_queue t at in
  let limit = match max with Some m -> min m (Queue.length q) | None -> Queue.length q in
  if limit = 0 then begin
    Core.charge at poll_cost;
    []
  end
  else begin
    let lines = ref 0 in
    let out = ref [] in
    for _ = 1 to limit do
      let payload = Queue.pop q in
      lines := !lines + lines_of t (Bytes.length payload);
      out := payload :: !out
    done;
    Core.charge at (poll_cost + burst_cost t (rx_dir t at) !lines);
    List.rev !out
  end

let roundtrip t ~client ~server ~request ~reply_len =
  send t ~from:client request;
  let _req = recv t ~at:server in
  let reply = Bytes.create reply_len in
  send t ~from:server reply;
  recv t ~at:client
