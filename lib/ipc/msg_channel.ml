module Machine = Sj_machine.Machine
module Core = Machine.Core

type t = {
  urpc : Urpc.t;
  master : Core.core;
  slave : Core.core;
  oversubscribed : bool;
}

(* Software costs measured for shared-memory MPI stacks: envelope
   matching + request bookkeeping per message. *)
let sw_overhead = 450
let context_switch = 2600

let create machine ~master ~slave ?(oversubscribed = false) () =
  { urpc = Urpc.create machine ~a:master ~b:slave (); master; slave; oversubscribed }

let create_cross ~master:(mm, master) ~slave:(sm, slave) ?slots
    ?(oversubscribed = false) () =
  {
    urpc = Urpc.create_cross ~a:(mm, master) ~b:(sm, slave) ?slots ();
    master;
    slave;
    oversubscribed;
  }

let cross_machine t = Urpc.cross_machine t.urpc
let pending t ~at = Urpc.pending t.urpc ~at
let reset t = Urpc.reset t.urpc

let send t ~from payload =
  Core.charge from sw_overhead;
  Urpc.send t.urpc ~from payload

let try_send t ~from payload =
  (* Envelope bookkeeping happens only once the eager-send credit check
     passes; a refused send cost just the Urpc-level poll. *)
  if Urpc.try_send t.urpc ~from payload then begin
    Core.charge from sw_overhead;
    true
  end
  else false

let send_burst t ~from payloads =
  (* The coalesced burst goes out as ONE aggregated envelope: request
     bookkeeping once, one doorbell at the Urpc layer — what a batching
     MPI/verbs stack does with eager message aggregation. The receiver
     still pays per-message matching in [drain] when it unpacks. *)
  let n = Urpc.send_burst t.urpc ~from payloads in
  if n > 0 then Core.charge from sw_overhead;
  n

let recv t ~at =
  Core.charge at sw_overhead;
  if t.oversubscribed then Core.charge at context_switch;
  Urpc.recv t.urpc ~at

let drain t ~at ?max () =
  (* One progress-engine wakeup services the whole burst: the context
     switch (if any) is paid once, envelope matching per message. *)
  if t.oversubscribed then Core.charge at context_switch;
  let msgs = Urpc.drain t.urpc ~at ?max () in
  Core.charge at (List.length msgs * sw_overhead);
  msgs

let rpc t ~request ~reply_len =
  send t ~from:t.master request;
  let _ = recv t ~at:t.slave in
  send t ~from:t.slave (Bytes.create reply_len);
  (* The master busy-waits while the slave processes; charge it the
     cycles the slave spent beyond the master's own clock. *)
  let lag = Core.cycles t.slave - Core.cycles t.master in
  if lag > 0 then Core.charge t.master lag;
  recv t ~at:t.master
