(** OpenMPI-style message passing used by the GUPS multi-process
    baseline (§5.2 "MP") and, via {!create_cross}, by the cluster's
    machine-to-machine request path.

    Compared to raw URPC this adds the software overheads of a
    messaging stack — marshalling, envelope matching, progress-engine
    polling — and models the busy-wait behavior the paper observes:
    slave processes spin on their channels, so when processes outnumber
    cores the spinning steals cycles and throughput collapses (the >36
    cores drop on M3 in Fig. 8). *)

type t

val create :
  Sj_machine.Machine.t ->
  master:Sj_machine.Machine.Core.core ->
  slave:Sj_machine.Machine.Core.core ->
  ?oversubscribed:bool ->
  unit ->
  t
(** [oversubscribed] adds a scheduler context-switch penalty to every
    receive, modelling more runnable busy-waiting processes than cores. *)

val create_cross :
  master:Sj_machine.Machine.t * Sj_machine.Machine.Core.core ->
  slave:Sj_machine.Machine.t * Sj_machine.Machine.Core.core ->
  ?slots:int ->
  ?oversubscribed:bool ->
  unit ->
  t
(** A channel whose two endpoints live on different simulated machines;
    transfers ride the fabric cost model (see {!Urpc.create_cross}). *)

val cross_machine : t -> bool

val pending : t -> at:Sj_machine.Machine.Core.core -> int
(** Messages queued toward [at] (pure query). *)

val reset : t -> unit
(** Drop all in-flight messages, both directions, free of charge — the
    crash/recovery path's connection reset. *)

val send_burst :
  t -> from:Sj_machine.Machine.Core.core -> bytes list -> int
(** Send a coalesced burst as ONE aggregated envelope: software
    bookkeeping once, one doorbell ({!Urpc.send_burst}); the receiver
    still pays per-message matching when {!drain} unpacks. Returns the
    number of messages accepted (longest prefix that fit the ring). *)

val send : t -> from:Sj_machine.Machine.Core.core -> bytes -> unit
val recv : t -> at:Sj_machine.Machine.Core.core -> bytes

val try_send : t -> from:Sj_machine.Machine.Core.core -> bytes -> bool
(** Backpressure-aware send: [false] (one poll charged) when the
    underlying ring is full; the envelope bookkeeping is charged only
    on acceptance. *)

val drain :
  t -> at:Sj_machine.Machine.Core.core -> ?max:int -> unit -> bytes list
(** Receive a whole burst under one progress-engine wakeup: the
    oversubscription context switch (if any) is paid once per drain,
    envelope matching per message, and the line transfers stream as in
    {!Urpc.drain}. *)

val rpc :
  t -> request:bytes -> reply_len:int -> bytes
(** Master sends [request], blocks for the slave's reply: both sides'
    costs are charged in program order (master also pays the blocked
    wait as cycles, since it busy-waits on the completion). *)
