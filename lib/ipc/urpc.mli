(** FastForward-style user-level RPC over shared memory (§5.1, Fig. 7).

    Client and server busy-wait poll circular buffers of cache-line
    sized slots. The dominant cost is cache-line ping-pong: every line
    the producer writes must migrate to the consumer's cache, at
    intra-socket or cross-socket latency depending on core placement —
    the "URPC L" vs "URPC X" distinction in Figure 7.

    A channel may also span two simulated machines ({!create_cross}),
    in which case the consumer side is priced as NIC setup plus
    wire-rate per line ([net_setup]/[net_link] in {!Sj_machine.Cost_model})
    instead of cache-line transfers.

    The implementation is a real ring (messages are queued bytes, FIFO,
    bounded); latencies are charged to the participating cores. *)

type t

val create :
  Sj_machine.Machine.t ->
  a:Sj_machine.Machine.Core.core ->
  b:Sj_machine.Machine.Core.core ->
  ?slots:int ->
  unit ->
  t
(** A bidirectional channel between two cores ([?slots] cache-line
    messages per direction, default 64). *)

val create_cross :
  a:Sj_machine.Machine.t * Sj_machine.Machine.Core.core ->
  b:Sj_machine.Machine.t * Sj_machine.Machine.Core.core ->
  ?slots:int ->
  unit ->
  t
(** A channel whose endpoints live on (possibly) different machines.
    With both endpoints on one machine this is exactly {!create}; across
    machines, transfers are priced on the fabric instead of the cache
    hierarchy. Direction is resolved by endpoint-core identity, so the
    two machines' core numbering may overlap freely. *)

val cross_socket : t -> bool
val cross_machine : t -> bool

val slots : t -> int
(** Ring capacity per direction. *)

val pending : t -> at:Sj_machine.Machine.Core.core -> int
(** Messages queued toward [at]. Pure query — a real consumer learns
    this from the polls it is already charged for in recv/drain. *)

val reset : t -> unit
(** Connection reset: silently drop every in-flight message in both
    directions. Failure-model bookkeeping (the bytes die with a crashed
    endpoint) — free of charge, senders learn nothing. *)

val send_burst :
  t -> from:Sj_machine.Machine.Core.core -> bytes list -> int
(** Send up to ring-space messages as ONE crossing: all lines written
    back-to-back, and (across machines) one NIC doorbell for the whole
    descriptor chain — the send-side twin of {!drain}'s consumer
    amortization. Accepts the longest prefix that fits and returns how
    many messages were enqueued; accepting none charges only the
    full-ring poll. *)

val send : t -> from:Sj_machine.Machine.Core.core -> bytes -> unit
(** Enqueue toward the peer, charging the sender's write-side costs.
    Raises [Failure] when the ring is full (callers size slots to the
    experiment). *)

val try_send : t -> from:Sj_machine.Machine.Core.core -> bytes -> bool
(** Like {!send} but a full ring is backpressure, not an error: charges
    the producer one poll (it inspected the head line and found it still
    owned by the consumer) and returns [false], leaving the ring
    unchanged. *)

val recv : t -> at:Sj_machine.Machine.Core.core -> bytes
(** Dequeue the next message, charging the receiver's line-transfer
    costs (+ one poll iteration). Raises [Failure] when empty — these
    benchmarks are request/response, never speculative. *)

val recv_opt : t -> at:Sj_machine.Machine.Core.core -> bytes option
(** Speculative receive: [None] on an empty ring costs one poll. *)

val drain :
  t -> at:Sj_machine.Machine.Core.core -> ?max:int -> unit -> bytes list
(** Dequeue up to [max] queued messages (default: all pending) in FIFO
    order as one burst: one poll, then the burst's lines pulled
    consecutively — the first at full transfer cost, the rest at the
    streaming rate. Draining n messages is therefore cheaper than n
    {!recv}s; this is the mechanism the cluster's batched server path
    amortizes. An empty drain costs one poll and returns []. *)

val roundtrip :
  t ->
  client:Sj_machine.Machine.Core.core ->
  server:Sj_machine.Machine.Core.core ->
  request:bytes ->
  reply_len:int ->
  bytes
(** One RPC exchange: request over, reply back; charges both sides and
    returns the (zero-filled) reply payload. *)
