(* `bench compartments`: the three-way crossing-mechanism comparison
   (lib/compart) end to end — headline trio (one run per mechanism at
   the same shape), the mechanism x compartments x crossing-frequency
   sweep, the acceptance claims (pkey strictly cheapest, zero flushes
   during pkey crossings, hostile probes contained), and the
   determinism audits. All orchestration lives in Sj_compart.Driver
   (shared with `sjctl compartments`); this file only prints tables and
   writes BENCH_compartments.json — or exits 2 on any divergence or
   failed claim, before any report is written. *)

module Compart = Sj_compart.Compart
module Driver = Sj_compart.Driver
module Creport = Sj_compart.Compart_report

let out_path = "BENCH_compartments.json"

let point_row label (p : Creport.point) =
  let c = p.Creport.cfg and r = p.Creport.res in
  Printf.printf "  %-10s %-11s %5d %6d %6d %12d %10.2f %8d %8d %6d\n" label
    (Compart.mechanism_name c.Compart.mechanism)
    c.Compart.compartments c.Compart.loads_per_crossing r.Compart.crossings
    r.Compart.total_cycles r.Compart.per_crossing r.Compart.flushes
    r.Compart.pkey_switches r.Compart.violations

let header () =
  Printf.printf "  %-10s %-11s %5s %6s %6s %12s %10s %8s %8s %6s\n" "run"
    "mechanism" "comps" "loads" "cross" "cycles" "per_cross" "flushes"
    "wrpkru" "viol"

let run () =
  let quick = !Bench_common.quick in
  Bench_common.section
    (Printf.sprintf
       "Compartments: crossing mechanisms compared (vas/cap/pkey)%s"
       (if quick then " (quick)" else ""));
  let { Driver.report; divergences; failed_claims } =
    Driver.run ~quick ~jobs:!Bench_common.jobs
      ~progress:(fun s -> Bench_common.note "  -- %s" s)
      ()
  in
  Bench_common.note "";
  Bench_common.note "  headline (same shape, three mechanisms):";
  header ();
  List.iter (point_row "headline") report.Creport.headline;
  Bench_common.note "";
  Bench_common.note "  sweep grid:";
  header ();
  List.iter (point_row "grid") report.Creport.grid;
  Bench_common.note "";
  if failed_claims <> [] then begin
    Printf.eprintf "compartments: acceptance claims failed:\n";
    List.iter (fun c -> Printf.eprintf "  - %s\n" c) failed_claims;
    exit 2
  end;
  Bench_common.note
    "  claims: pkey strictly cheapest, zero flushes during pkey \
     crossings, probes contained -> all hold";
  match divergences with
  | [] ->
    Bench_common.note "  determinism audits: %s -> identical"
      (String.concat ", " report.Creport.audits);
    let json = Creport.to_json report in
    let oc = open_out out_path in
    output_string oc json;
    close_out oc;
    (match Creport.check_file out_path with
    | Ok () -> Bench_common.note "  wrote %s (schema %s)" out_path Creport.schema
    | Error es ->
      Printf.eprintf "compartments: emitted report failed validation:\n";
      List.iter (fun e -> Printf.eprintf "  - %s\n" e) es;
      exit 2)
  | ds ->
    Printf.eprintf
      "compartments: determinism audit divergence (%s); refusing to write %s\n"
      (String.concat ", " ds) out_path;
    exit 2
