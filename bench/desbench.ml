(* Host-throughput microbench for the DES core: raw events/sec through
   Engine.schedule_after + run, no machine model attached. This is the
   number that bounds how many client state machines (Fig. 8/10 style)
   a wall-clock second can carry, and the direct check that the
   array-heap engine stays off the GC (allocation columns). *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* [chains] self-rescheduling state machines, each firing [per_chain]
   events at a fixed stride; strides differ per chain so the heap sees
   interleaved timestamps, not one degenerate FIFO run. *)
let drive ~chains ~per_chain =
  let eng = Sj_des.Engine.create () in
  let fired = ref 0 in
  let mk i =
    let stride = 1 + (i mod 7) in
    let remaining = ref per_chain in
    let rec step () =
      incr fired;
      decr remaining;
      if !remaining > 0 then Sj_des.Engine.schedule_after eng ~delay:stride step
    in
    Sj_des.Engine.schedule eng ~at:(i mod 13) step
  in
  for i = 0 to chains - 1 do
    mk i
  done;
  Sj_des.Engine.run eng;
  !fired

(* Same shape, but every event carries the kvstore switch-storm body:
   jump into a shared segment, one line-sized op, jump home. The gap
   between this row and the bare-event rows is the host price of the
   machine model on the cluster's hot path — what the batched request
   path has to amortize per simulated client wake-up. *)
let drive_storm ~chains ~per_chain =
  let module Machine = Sj_machine.Machine in
  let module Core = Machine.Core in
  let module Api = Sj_core.Api in
  let open Sj_util in
  let machine = Machine.create Sj_machine.Platform.m2 in
  let sys = Api.boot machine in
  let eng = Sj_des.Engine.create () in
  let fired = ref 0 in
  let mk i =
    let proc =
      Sj_kernel.Process.create ~name:(Printf.sprintf "storm%d" i) machine
    in
    let ctx = Api.context sys proc (Machine.core machine (i mod Array.length (Machine.cores machine))) in
    let vas = Api.vas_create ctx ~name:(Printf.sprintf "s%d" i) ~mode:0o600 in
    let seg =
      Api.seg_alloc_anywhere ctx
        ~name:(Printf.sprintf "s%d.seg" i)
        ~size:(Size.kib 16) ~mode:0o600
    in
    Api.seg_attach ctx vas seg ~prot:Sj_paging.Prot.rw;
    let vh = Api.vas_attach ctx vas in
    let base = Sj_core.Segment.base seg in
    let core = Api.core ctx in
    let stride = 1 + (i mod 7) in
    let remaining = ref per_chain in
    let n = ref 0 in
    let rec step () =
      incr fired;
      decr remaining;
      Api.vas_switch ctx vh;
      let va = base + (!n * 64 mod Size.kib 16) in
      ignore (Core.load64 core ~va);
      Core.store64 core ~va (Int64.of_int !n);
      incr n;
      Api.switch_home ctx;
      if !remaining > 0 then Sj_des.Engine.schedule_after eng ~delay:stride step
    in
    Sj_des.Engine.schedule eng ~at:(i mod 13) step
  in
  for i = 0 to chains - 1 do
    mk i
  done;
  Sj_des.Engine.run eng;
  !fired

let run () =
  Bench_common.section "DES core host throughput (events/sec)";
  Printf.printf "  %-24s %12s %10s %14s %12s\n" "shape" "events" "wall_s"
    "events/sec" "minor_w/ev";
  List.iter
    (fun (label, chains, per_chain) ->
      (* Warm-up pass absorbs heap growth and code warm-up. *)
      ignore (drive ~chains ~per_chain);
      let minor0 = Gc.minor_words () in
      let events, wall = time (fun () -> drive ~chains ~per_chain) in
      let minor = Gc.minor_words () -. minor0 in
      Printf.printf "  %-24s %12d %10.3f %14.0f %12.3f\n" label events wall
        (float_of_int events /. wall)
        (minor /. float_of_int events))
    [
      ("1 chain x 1M", 1, 1_000_000);
      ("1k chains x 1k", 1_000, 1_000);
      ("100k chains x 20", 100_000, 20);
    ];
  List.iter
    (fun (label, chains, per_chain) ->
      ignore (drive_storm ~chains ~per_chain);
      let minor0 = Gc.minor_words () in
      let events, wall = time (fun () -> drive_storm ~chains ~per_chain) in
      let minor = Gc.minor_words () -. minor0 in
      Printf.printf "  %-24s %12d %10.3f %14.0f %12.3f\n" label events wall
        (float_of_int events /. wall)
        (minor /. float_of_int events))
    [ ("switch-storm 64 x 4k", 64, 4_000) ]
