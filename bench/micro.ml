(* Bechamel micro-benchmarks: host wall-clock cost of the simulator's
   hot operations (one Test.make per operation). These are about the
   *simulator's* performance, complementing the simulated-cycle tables
   above. *)

open Bechamel
open Toolkit
open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Api = Sj_core.Api
module Prot = Sj_paging.Prot

let make_switch_test () =
  let machine = Machine.create Sj_machine.Platform.m2 in
  let sys = Api.boot machine in
  let proc = Sj_kernel.Process.create ~name:"micro" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in
  let vas = Api.vas_create ctx ~name:"m" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"m.seg" ~size:(Size.mib 1) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Test.make ~name:"vas_switch+home"
    (Staged.stage (fun () ->
         Api.vas_switch ctx vh;
         Api.switch_home ctx))

(* The kvstore pattern isolated: every iteration jumps into the shared
   segment, does one line-sized op there, and jumps home — the
   switch-heavy worst case the cluster's batched path amortizes. The
   existing vas_switch+home test prices the bare jump; the storm adds
   the small op so the ratio of the two shows how much of the kvstore
   hot loop is pure switching. *)
let make_switch_storm_test () =
  let machine = Machine.create Sj_machine.Platform.m2 in
  let sys = Api.boot machine in
  let proc = Sj_kernel.Process.create ~name:"storm" machine in
  let ctx = Api.context sys proc (Machine.core machine 0) in
  let vas = Api.vas_create ctx ~name:"s" ~mode:0o600 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"s.seg" ~size:(Size.kib 64) ~mode:0o600 in
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  let base = Sj_core.Segment.base seg in
  let core = Api.core ctx in
  let i = ref 0 in
  Test.make ~name:"switch-storm (switch+op+home)"
    (Staged.stage (fun () ->
         Api.vas_switch ctx vh;
         let va = base + (!i * 64 mod Size.kib 64) in
         ignore (Core.load64 core ~va);
         Core.store64 core ~va (Int64.of_int !i);
         incr i;
         Api.switch_home ctx))

let make_tlb_test () =
  let tlb = Sj_tlb.Tlb.create Sj_tlb.Tlb.default_config in
  Sj_tlb.Tlb.insert tlb ~tag:0 ~va:0x1000 ~pa:0x2000 ~prot:Prot.r
    ~size:Sj_paging.Page_table.P4K ~global:false;
  Test.make ~name:"tlb lookup (hit)"
    (Staged.stage (fun () -> ignore (Sj_tlb.Tlb.lookup tlb ~tag:0 ~va:0x1234)))

let make_walk_test () =
  let mem = Sj_mem.Phys_mem.create ~size:(Size.mib 16) ~numa_nodes:1 in
  let pt = Sj_paging.Page_table.create mem in
  let frames = Sj_mem.Phys_mem.alloc_frames mem ~n:64 in
  Sj_paging.Page_table.map_range pt ~va:0x100000 ~frames ~prot:Prot.rw;
  Test.make ~name:"page walk"
    (Staged.stage (fun () -> ignore (Sj_paging.Page_table.walk pt ~va:0x108000)))

let make_malloc_test () =
  let heap = Sj_alloc.Mspace.create ~base:0 ~size:(Size.mib 16) in
  Test.make ~name:"mspace malloc+free"
    (Staged.stage (fun () ->
         match Sj_alloc.Mspace.malloc heap 64 with
         | Some va -> Sj_alloc.Mspace.free heap va
         | None -> ()))

let make_load_test () =
  let machine = Machine.create Sj_machine.Platform.m2 in
  let core = Machine.core machine 0 in
  let pt = Sj_paging.Page_table.create (Machine.mem machine) in
  let frames = Sj_mem.Phys_mem.alloc_frames (Machine.mem machine) ~n:16 in
  Sj_paging.Page_table.map_range pt ~va:0x10000 ~frames ~prot:Prot.rw;
  Core.set_page_table core (Some pt);
  Test.make ~name:"simulated load64"
    (Staged.stage (fun () -> ignore (Core.load64 core ~va:0x10040)))

let run () =
  Bench_common.section "Micro: simulator hot-path wall-clock (bechamel)";
  let tests =
    Test.make_grouped ~name:"sim"
      [
        make_tlb_test ();
        make_walk_test ();
        make_malloc_test ();
        make_load_test ();
        make_switch_test ();
        make_switch_storm_test ();
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let t =
    Table.create [ ("operation", Table.Left); ("ns/run (host)", Table.Right) ]
  in
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some (e :: _) -> e | Some [] | None -> nan
      in
      Table.add_row t [ name; Table.cell_float est ])
    (List.sort compare rows);
  Table.print t
