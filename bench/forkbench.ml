(* `bench fork`: the fork-serving KV comparison (lib/fork + kv_fork)
   end to end — headline pair (prefork pool vs fork-per-connection at
   the same shape), the serving-mode x connections x write-fraction
   sweep, the acceptance claims (fault storm measured, prefork
   steady-state clean, parent store unwritten, >90% page-table sharing,
   leak-free refcounts, prefork faster), and the determinism audits.
   All orchestration lives in Sj_fork.Driver (shared with `sjctl
   fork`); this file only prints tables and writes BENCH_fork.json — or
   exits 2 on any divergence or failed claim, before any report is
   written. *)

module Kv_fork = Sj_kvstore.Kv_fork
module Driver = Sj_fork.Driver
module Freport = Sj_fork.Fork_report

let out_path = "BENCH_fork.json"

let point_row label (p : Freport.point) =
  let c = p.Freport.cfg and r = p.Freport.res in
  Printf.printf "  %-10s %-13s %5d %5d %5.2f %10.0f %8.0f %9.0f %6d %6d %6d %7s\n"
    label
    (Kv_fork.mode_name c.Kv_fork.mode)
    c.Kv_fork.connections c.Kv_fork.requests_per_conn c.Kv_fork.set_fraction
    r.Kv_fork.throughput r.Kv_fork.p50 r.Kv_fork.p99 r.Kv_fork.forks
    r.Kv_fork.cow_faults r.Kv_fork.cow_copies
    (Printf.sprintf "%d/%d" r.Kv_fork.share_shared r.Kv_fork.share_total)

let header () =
  Printf.printf "  %-10s %-13s %5s %5s %5s %10s %8s %9s %6s %6s %6s %7s\n" "run"
    "mode" "conns" "reqs" "sets" "thr(rps)" "p50" "p99" "forks" "cow" "copies"
    "share"

let run () =
  let quick = !Bench_common.quick in
  Bench_common.section
    (Printf.sprintf "Fork: prefork pool vs fork-per-connection KV serving%s"
       (if quick then " (quick)" else ""));
  let { Driver.report; divergences; failed_claims } =
    Driver.run ~quick ~jobs:!Bench_common.jobs
      ~progress:(fun s -> Bench_common.note "  -- %s" s)
      ()
  in
  Bench_common.note "";
  Bench_common.note "  headline (same shape, both serving modes):";
  header ();
  List.iter (point_row "headline") report.Freport.headline;
  Bench_common.note "";
  Bench_common.note "  sweep grid:";
  header ();
  List.iter (point_row "grid") report.Freport.grid;
  Bench_common.note "";
  if failed_claims <> [] then begin
    Printf.eprintf "fork: acceptance claims failed:\n";
    List.iter (fun c -> Printf.eprintf "  - %s\n" c) failed_claims;
    exit 2
  end;
  Bench_common.note
    "  claims: storm measured, prefork steady-state clean, store \
     unwritten, sharing >90%%, refcounts leak-free -> all hold";
  match divergences with
  | [] ->
    Bench_common.note "  determinism audits: %s -> identical"
      (String.concat ", " report.Freport.audits);
    let json = Freport.to_json report in
    let oc = open_out out_path in
    output_string oc json;
    close_out oc;
    (match Freport.check_file out_path with
    | Ok () -> Bench_common.note "  wrote %s (schema %s)" out_path Freport.schema
    | Error es ->
      Printf.eprintf "fork: emitted report failed validation:\n";
      List.iter (fun e -> Printf.eprintf "  - %s\n" e) es;
      exit 2)
  | ds ->
    Printf.eprintf "fork: determinism audit divergence (%s); refusing to write %s\n"
      (String.concat ", " ds) out_path;
    exit 2
