(* Evaluation of the safety analysis (sec 4.3 leaves "detailed
   algorithms, optimizations, and evaluation" to future work; this is
   that evaluation, on synthetic programs).

   For batches of random multi-VAS programs we report how many memory
   operations the analysis proves safe (checks elided vs the
   tag-every-pointer strawman), what redundant-check elimination
   additionally saves, and what the instrumented programs do when run. *)

open Sj_util
open Bench_common
open Sj_checker

(* Straight-line program generator over k VASes (same shape as the test
   suite's, but parameterized by switch density). *)
let gen_program rng ~len ~switch_pct =
  let instrs = ref [] in
  let regs = ref [] in
  let fresh = ref 0 in
  for _ = 1 to len do
    let reg () =
      incr fresh;
      Printf.sprintf "r%d" !fresh
    in
    let pick () =
      match !regs with [] -> None | rs -> Some (List.nth rs (Rng.int rng (List.length rs)))
    in
    let roll = Rng.int rng 100 in
    if roll < switch_pct then
      instrs := Ir.Switch (Printf.sprintf "v%d" (Rng.int rng 3)) :: !instrs
    else
      match Rng.int rng 6 with
      | 0 ->
        let x = reg () in
        instrs := Ir.Malloc x :: !instrs;
        regs := x :: !regs
      | 1 ->
        let x = reg () in
        instrs := Ir.Alloca x :: !instrs;
        regs := x :: !regs
      | 2 | 3 -> (
        match pick () with
        | Some p ->
          let x = reg () in
          instrs := Ir.Load (x, p) :: !instrs;
          regs := x :: !regs
        | None -> ())
      | _ -> (
        match (pick (), pick ()) with
        | Some p, Some q -> instrs := Ir.Store (p, q) :: !instrs
        | _ -> ())
  done;
  {
    Ir.funcs =
      [
        {
          Ir.fname = "main";
          params = [];
          blocks = [ { Ir.label = "entry"; instrs = List.rev !instrs; term = Ir.Ret None } ];
        };
      ];
  }

let run () =
  section "Analysis evaluation: check elision on random multi-VAS programs";
  note "'elided' = memory operations proven safe statically (the naive";
  note "tag-every-pointer scheme would check all of them); 'RCE' = checks";
  note "additionally removed by redundant-check elimination (sec 4.4).";
  let t =
    Table.create
      [
        ("switch density", Table.Left);
        ("programs", Table.Right);
        ("memory ops", Table.Right);
        ("elided", Table.Right);
        ("elided %", Table.Right);
        ("checks", Table.Right);
        ("RCE removed", Table.Right);
        ("trapped runs", Table.Right);
        ("clean runs", Table.Right);
      ]
  in
  (* Each density owns its RNG (seeded by the density), so batches fan
     across the pool without sharing any state. *)
  let rows =
    par_map
      (fun switch_pct ->
      let rng = Rng.create ~seed:(1000 + switch_pct) in
      let programs = 300 in
      let mem_ops = ref 0 and elided = ref 0 and checks = ref 0 in
      let rce = ref 0 and trapped = ref 0 and clean = ref 0 in
      for _ = 1 to programs do
        let p = gen_program rng ~len:60 ~switch_pct in
        (match Ir.validate p with Ok () -> () | Error e -> failwith e);
        let instrumented, report = Transform.instrument p in
        let optimized, removed = Transform.optimize instrumented in
        mem_ops := !mem_ops + report.Transform.memory_ops;
        elided := !elided + report.Transform.elided;
        checks := !checks + report.Transform.checks_inserted - removed;
        rce := !rce + removed;
        match Interp.run optimized with
        | Interp.Trapped _ -> incr trapped
        | Interp.Finished _ | Interp.Type_fault _ -> incr clean
        | Interp.Faulted _ -> failwith "instrumented program faulted"
        | Interp.Out_of_fuel -> ()
      done;
      [
        Printf.sprintf "%d%%" switch_pct;
        Table.cell_int programs;
        Table.cell_int !mem_ops;
        Table.cell_int !elided;
        Printf.sprintf "%.0f%%" (100.0 *. float_of_int !elided /. float_of_int (max 1 !mem_ops));
        Table.cell_int !checks;
        Table.cell_int !rce;
        Table.cell_int !trapped;
        Table.cell_int !clean;
      ])
      [ 0; 5; 15; 30; 50 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t
