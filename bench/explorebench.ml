(* `bench explore`: the invariant-exploration harness (lib/explore) end
   to end — enumerate the fault-plan x schedule x backend sweep, run
   every config, check every global invariant after every run, replay
   each violation from its (backend, seed, plan) key, and run the
   determinism audits. All orchestration lives in Sj_explore.Driver
   (shared with `sjctl explore`); this file only prints tables and
   writes BENCH_explore.json — or exits 2 on any divergence, failed
   claim, or unreproduced violation, before any report is written. *)

module Driver = Sj_explore.Driver
module Ereport = Sj_explore.Explore_report

let out_path = "BENCH_explore.json"

let run () =
  let quick = !Bench_common.quick in
  Bench_common.section
    (Printf.sprintf "Explore: invariant sweep over fault plans x schedules x backends%s"
       (if quick then " (quick)" else ""));
  let { Driver.report; divergences; failed_claims } =
    Driver.run ~quick ~jobs:!Bench_common.jobs
      ~progress:(fun s -> Bench_common.note "  -- %s" s)
      ()
  in
  Bench_common.note "";
  Bench_common.note "  sweep: %d configs (%d distinct, %d fuzzed)" report.Ereport.configs_run
    report.Ereport.distinct_configs report.Ereport.fuzz_configs;
  Bench_common.note "  backends:   %s" (String.concat ", " report.Ereport.backends);
  Bench_common.note "  plan kinds: %s" (String.concat ", " report.Ereport.plan_kinds);
  Bench_common.note "  mechanisms: %s" (String.concat ", " report.Ereport.mechanisms);
  Bench_common.note "";
  Bench_common.note "  invariants checked after every run:";
  List.iter (fun (name, doc) -> Bench_common.note "    %-16s %s" name doc)
    report.Ereport.invariants;
  Bench_common.note "";
  if report.Ereport.details = [] then
    Bench_common.note "  violations: 0"
  else begin
    Bench_common.note "  violations: %d" report.Ereport.violations;
    List.iter
      (fun (d : Ereport.detail) ->
        Bench_common.note "    [%s] %s seed=%d plan=[%s]%s" d.Ereport.invariant
          d.Ereport.backend d.Ereport.seed d.Ereport.plan
          (if d.Ereport.reproduced then "" else " (NOT REPRODUCED)");
        Bench_common.note "      %s" d.Ereport.message)
      report.Ereport.details
  end;
  Bench_common.note "";
  if failed_claims <> [] then begin
    Printf.eprintf "explore: acceptance claims failed:\n";
    List.iter (fun c -> Printf.eprintf "  - %s\n" c) failed_claims;
    exit 2
  end;
  Bench_common.note
    "  claims: >=100 distinct configs, all plan kinds x backends x mechanisms \
     swept, >=6 invariants, violations replay from their keys -> all hold";
  match divergences with
  | [] ->
    Bench_common.note "  determinism audits: %s -> identical"
      (String.concat ", " report.Ereport.audits);
    let json = Ereport.to_json report in
    let oc = open_out out_path in
    output_string oc json;
    close_out oc;
    (match Ereport.check_file out_path with
    | Ok () -> Bench_common.note "  wrote %s (schema %s)" out_path Ereport.schema
    | Error es ->
      Printf.eprintf "explore: emitted report failed validation:\n";
      List.iter (fun e -> Printf.eprintf "  - %s\n" e) es;
      exit 2)
  | ds ->
    Printf.eprintf "explore: divergence or unreproduced violation (%s); refusing to write %s\n"
      (String.concat ", " ds) out_path;
    exit 2
