(* Figure 1: page-table construction (mmap) and removal (munmap) cost
   versus region size, 4 KiB pages, cached and uncached.

   "Cached" maps an existing VM object (pages already in the page
   cache); "uncached" includes allocating and zeroing the pages. The
   paper's headline: ~5 ms for 1 GiB, ~2 s for 64 GiB, linear in
   region size. *)

open Sj_util
open Bench_common
module Vmspace = Sj_kernel.Vmspace
module Vm_object = Sj_kernel.Vm_object
module Prot = Sj_paging.Prot

let run () =
  section "Figure 1: mmap/munmap latency vs region size (4 KiB pages)";
  note "Paper reference points: 1 GiB map ~5 ms; costs linear in size;";
  note "cached mapping (pages already resident) ~10x cheaper.";
  let platform = Sj_machine.Platform.m2 in
  let t =
    Table.create ~title:"latency [ms] on M2"
      [
        ("region", Table.Left);
        ("map", Table.Right);
        ("unmap", Table.Right);
        ("map (cached)", Table.Right);
        ("unmap (cached)", Table.Right);
      ]
  in
  (* 32 KiB .. 1 GiB on the simulated machine (larger sizes scale
     linearly by construction; see EXPERIMENTS.md). *)
  let sizes = List.init 16 (fun i -> 1 lsl (15 + i)) in
  (* Each size simulates its own machine, so the trials fan across the
     domain pool; rows come back in size order. *)
  let rows =
    par_map
      (fun size ->
        let machine = Machine.create platform in
        let core = Machine.core machine 0 in
        let vms = Vmspace.create machine ~charge_to:None in
        Core.set_page_table core (Some (Vmspace.page_table vms));
        let base = Size.gib 2 in
        (* Uncached: object allocation (zeroing) + mapping. *)
        let c0 = Core.cycles core in
        let obj = Vm_object.create machine ~size ~charge_to:(Some core) in
        Vmspace.map_object vms ~charge_to:(Some core) ~base ~prot:Prot.rw obj;
        let map_cold = Core.cycles core - c0 in
        let c1 = Core.cycles core in
        Vmspace.unmap_region vms ~charge_to:(Some core) ~base;
        let unmap_cold = Core.cycles core - c1 in
        (* Cached: the object (page cache) already exists. *)
        let c2 = Core.cycles core in
        Vmspace.map_object vms ~charge_to:(Some core) ~base ~prot:Prot.rw obj;
        let map_cached = Core.cycles core - c2 in
        let c3 = Core.cycles core in
        Vmspace.unmap_region vms ~charge_to:(Some core) ~base;
        let unmap_cached = Core.cycles core - c3 in
        [
          Printf.sprintf "%s (%s)" (pow2_label size) (Size.to_string size);
          Table.cell_float ~decimals:4 (ms_of_cycles platform map_cold);
          Table.cell_float ~decimals:4 (ms_of_cycles platform unmap_cold);
          Table.cell_float ~decimals:4 (ms_of_cycles platform map_cached);
          Table.cell_float ~decimals:4 (ms_of_cycles platform unmap_cached);
        ])
      sizes
  in
  List.iter (Table.add_row t) rows;
  Table.print t
