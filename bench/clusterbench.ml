(* `bench cluster`: the sharded multi-machine KV cluster (lib/cluster)
   end to end — headline single-op-vs-batched pair (a million simulated
   clients in full mode), the shards x batch x pipeline x backend sweep,
   availability through a shard crash, and the determinism audits. All
   orchestration lives in Sj_cluster.Driver (shared with `sjctl
   cluster`); this file only parses nothing, prints tables, and writes
   BENCH_cluster.json — or exits 2 on any audit divergence, before any
   report is written. *)

module Cluster = Sj_cluster.Cluster
module Driver = Sj_cluster.Driver
module Creport = Sj_cluster.Cluster_report

let out_path = "BENCH_cluster.json"

let point_row label (p : Creport.point) =
  let c = p.Creport.cfg and r = p.Creport.res in
  Printf.printf "  %-10s %3d %5d %5d  %-10s %12.0f %10d %10d %10d %8.2f %8d\n"
    label c.Cluster.shards c.Cluster.batch c.Cluster.pipeline
    (Creport.backend_name c.Cluster.backend)
    r.Cluster.throughput r.Cluster.p50 r.Cluster.p99 r.Cluster.p999
    r.Cluster.avg_batch r.Cluster.ring_stalls

let header () =
  Printf.printf "  %-10s %3s %5s %5s  %-10s %12s %10s %10s %10s %8s %8s\n"
    "run" "K" "batch" "pipe" "backend" "rps" "p50" "p99" "p999" "avg_b"
    "stalls"

let run () =
  let quick = !Bench_common.quick in
  Bench_common.section
    (Printf.sprintf "Cluster: sharded KV, batched+pipelined request path%s"
       (if quick then " (quick)" else ""));
  let { Driver.report; divergences } =
    Driver.run ~quick ~jobs:!Bench_common.jobs
      ~progress:(fun s -> Bench_common.note "  -- %s" s)
      ()
  in
  Bench_common.note "";
  Bench_common.note "  headline (%d clients x %d requests):"
    report.Creport.baseline.Creport.cfg.Cluster.clients
    report.Creport.baseline.Creport.cfg.Cluster.requests_per_client;
  header ();
  point_row "single-op" report.Creport.baseline;
  point_row "batched" report.Creport.batched;
  let speedup =
    report.Creport.batched.Creport.res.Cluster.throughput
    /. report.Creport.baseline.Creport.res.Cluster.throughput
  in
  Bench_common.note "  batching+pipelining speedup: %.2fx" speedup;
  Bench_common.note "";
  Bench_common.note "  sweep grid:";
  header ();
  List.iter (point_row "grid") report.Creport.grid;
  (match report.Creport.fault with
  | None -> ()
  | Some p ->
    Bench_common.note "";
    Bench_common.note "  fault: shard %d killed mid-storm"
      (match p.Creport.cfg.Cluster.fault with
      | Some f -> f.Cluster.victim_shard
      | None -> -1);
    (match p.Creport.res.Cluster.outage with
    | None -> Bench_common.note "  (no outage recorded)"
    | Some o ->
      Bench_common.note
        "  crashed at %d, recovered at %d: %d cycles of outage"
        o.Cluster.crashed_at o.Cluster.recovered_at o.Cluster.outage_cycles);
    let victim =
      match p.Creport.cfg.Cluster.fault with
      | Some f -> f.Cluster.victim_shard
      | None -> 0
    in
    Printf.printf "  %-8s %12s %12s %12s\n" "window" "served" "victim"
      "others";
    Array.iteri
      (fun w row ->
        let total = Array.fold_left ( + ) 0 row in
        Printf.printf "  %-8d %12d %12d %12d\n" w total row.(victim)
          (total - row.(victim)))
      p.Creport.res.Cluster.timeline);
  Bench_common.note "";
  match divergences with
  | [] ->
    Bench_common.note "  determinism audits: %s -> identical"
      (String.concat ", " report.Creport.audits);
    let json = Creport.to_json report in
    let oc = open_out out_path in
    output_string oc json;
    close_out oc;
    (match Creport.check_file out_path with
    | Ok () -> Bench_common.note "  wrote %s (schema %s)" out_path Creport.schema
    | Error es ->
      Printf.eprintf "cluster: emitted report failed validation:\n";
      List.iter (fun e -> Printf.eprintf "  - %s\n" e) es;
      exit 2)
  | ds ->
    Printf.eprintf
      "cluster: determinism audit divergence (%s); refusing to write %s\n"
      (String.concat ", " ds) out_path;
    exit 2
