(* Ablation benches for the design choices DESIGN.md calls out:

   1. TLB tag policy and capacity (sec 4.4's trade-off discussion);
   2. cached segment translations (sec 4.1's attach acceleration);
   3. lock granularity: reader/writer lock vs plain mutex (sec 5.3's
      "more scalable lock design" remark);
   4. page size: 4 KiB vs 2 MiB mappings for Fig. 1-style construction. *)

open Sj_util
open Bench_common
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Prot = Sj_paging.Prot
module Gups = Sj_gups.Gups
module Kv = Sj_kvstore.Kv_sim
module Page_table = Sj_paging.Page_table
module Pm = Sj_mem.Phys_mem

let tlb_tags () =
  section "Ablation: TLB tag policy on GUPS (M3, 8 x 16 MiB windows)";
  note "Tags keep per-window translations across switches; the benefit";
  note "shrinks as windows multiply and capacity-miss rates take over.";
  let t =
    Table.create
      [ ("windows", Table.Right); ("MUPS (untagged)", Table.Right);
        ("MUPS (tagged)", Table.Right); ("TLB miss/s untagged", Table.Right);
        ("TLB miss/s tagged", Table.Right) ]
  in
  let rows =
    par_map
      (fun windows ->
        let cfg tags =
          { Gups.default_config with windows; window_size = Size.mib 16; window_visits = 300; tags }
        in
        let off = Gups.run (cfg false) ~design:Gups.Spacejmp in
        let on = Gups.run (cfg true) ~design:Gups.Spacejmp in
        [
          string_of_int windows;
          Table.cell_float off.Gups.mups;
          Table.cell_float on.Gups.mups;
          Table.cell_int (int_of_float off.Gups.tlb_misses_per_sec);
          Table.cell_int (int_of_float on.Gups.tlb_misses_per_sec);
        ])
      [ 1; 2; 4; 8; 16 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let translation_cache () =
  section "Ablation: cached segment translations (attach cost, M2)";
  note "Grafting pre-built page-table subtrees turns per-page attach";
  note "costs into one PDPT write per GiB (sec 4.1).";
  let t =
    Table.create
      [
        ("segment size", Table.Left);
        ("attach, no cache [cyc]", Table.Right);
        ("attach, cached [cyc]", Table.Right);
        ("speedup", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun size ->
        let _, _, ctx = fresh_system () in
        let core = Api.core ctx in
        let v1 = Api.vas_create ctx ~name:"nc" ~mode:0o600 in
        let v2 = Api.vas_create ctx ~name:"c" ~mode:0o600 in
        let seg = Api.seg_alloc_anywhere ctx ~name:"seg" ~size ~mode:0o600 in
        Api.seg_attach ctx v1 seg ~prot:Prot.rw;
        Api.seg_attach ctx v2 seg ~prot:Prot.rw;
        let c0 = Core.cycles core in
        let _vh1 = Api.vas_attach ctx v1 in
        let cold = Core.cycles core - c0 in
        Api.seg_ctl ctx (`Cache_translations seg);
        let c1 = Core.cycles core in
        let _vh2 = Api.vas_attach ctx v2 in
        let cached = Core.cycles core - c1 in
        [
          Size.to_string size;
          Table.cell_int cold;
          Table.cell_int cached;
          Printf.sprintf "%.1fx" (float_of_int cold /. float_of_int cached);
        ])
      [ Size.mib 16; Size.mib 64; Size.mib 256; Size.gib 1 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let lock_design () =
  section "Ablation: reader/writer lock vs mutex (RedisJMP GET, M1)";
  note "A mutex serializes readers; the rwlock admits them in parallel --";
  note "the design reason lockable segments tie lock mode to mapping prot.";
  let t =
    Table.create
      [
        ("clients", Table.Right);
        ("rwlock GET/s", Table.Right);
        ("mutex GET/s", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun clients ->
        let base = { Kv.default_config with clients } in
        let rw = Kv.run base in
        let mutex = Kv.run { base with force_exclusive = true } in
        [
          string_of_int clients;
          Table.cell_int (int_of_float rw.Kv.throughput);
          Table.cell_int (int_of_float mutex.Kv.throughput);
        ])
      [ 1; 2; 4; 8; 12 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let page_size () =
  section "Ablation: 4 KiB vs 2 MiB pages for region construction (M2)";
  note "Huge pages cut PTE count 512x but need size-aligned regions;";
  note "sec 6 notes superpage TLBs can be small, so Fig. 6-style benefits vary.";
  let t =
    Table.create
      [
        ("region", Table.Left);
        ("map 4 KiB [ms]", Table.Right);
        ("map 2 MiB [ms]", Table.Right);
      ]
  in
  let platform = Sj_machine.Platform.m2 in
  let rows =
    par_map
      (fun size ->
      let machine = Machine.create platform in
      let core = Machine.core machine 0 in
      let pt = Page_table.create (Machine.mem machine) in
      let cost = Machine.cost machine in
      let charge_delta f =
        let s0 : Page_table.stats =
          let s = Page_table.stats pt in
          { tables_allocated = s.tables_allocated; tables_freed = s.tables_freed;
            pte_writes = s.pte_writes; pte_clears = s.pte_clears }
        in
        f ();
        let s1 = Page_table.stats pt in
        Core.charge core
          (((s1.tables_allocated - s0.tables_allocated) * cost.table_alloc)
          + ((s1.pte_writes - s0.pte_writes) * cost.pte_write))
      in
      let base = Size.gib 4 in
      let c0 = Core.cycles core in
      charge_delta (fun () ->
          for i = 0 to (size / Addr.page_size) - 1 do
            Page_table.map pt
              ~va:(base + (i * Addr.page_size))
              ~pa:(i * Addr.page_size) ~prot:Prot.rw ~size:Page_table.P4K
          done);
      let small = Core.cycles core - c0 in
      let c1 = Core.cycles core in
      charge_delta (fun () ->
          for i = 0 to (size / Size.mib 2) - 1 do
            Page_table.map pt
              ~va:(Size.gib 16 + (i * Size.mib 2))
              ~pa:(i * Size.mib 2) ~prot:Prot.rw ~size:Page_table.P2M
          done);
      let huge = Core.cycles core - c1 in
      [
        Size.to_string size;
        Table.cell_float ~decimals:4 (ms_of_cycles platform small);
        Table.cell_float ~decimals:4 (ms_of_cycles platform huge);
      ])
      [ Size.mib 64; Size.mib 256; Size.gib 1 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let snapshot_vs_copy () =
  section "Ablation: copy-on-write snapshot vs eager clone (M2)";
  note "Versioning via seg_snapshot costs O(mapped PTE protections);";
  note "seg_clone copies every page up front. COW pays per page only";
  note "when (and if) the page is written (sec 7).";
  let t =
    Table.create
      [
        ("segment", Table.Left);
        ("seg_clone [cyc]", Table.Right);
        ("seg_snapshot [cyc]", Table.Right);
        ("first write to a page [cyc]", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun size ->
        let _, _, ctx = fresh_system () in
        let core = Api.core ctx in
        let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
        let seg = Api.seg_alloc_anywhere ctx ~name:"data" ~size ~mode:0o600 in
        Api.seg_attach ctx vas seg ~prot:Prot.rw;
        let vh = Api.vas_attach ctx vas in
        let c0 = Core.cycles core in
        let _clone = Api.seg_clone ctx seg ~name:"clone" in
        let clone_cost = Core.cycles core - c0 in
        let c1 = Core.cycles core in
        let _snap = Api.seg_snapshot ctx seg ~name:"snap" in
        let snap_cost = Core.cycles core - c1 in
        Api.vas_switch ctx vh;
        let c2 = Core.cycles core in
        Api.store64 ctx ~va:(Segment.base seg) 1L;
        let write_cost = Core.cycles core - c2 in
        Api.switch_home ctx;
        [
          Size.to_string size;
          Table.cell_int clone_cost;
          Table.cell_int snap_cost;
          Table.cell_int write_cost;
        ])
      [ Size.mib 4; Size.mib 16; Size.mib 64 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let memory_tiers () =
  section "Ablation: window placement across memory tiers (sec 7, M3 + NVM tier)";
  note "The same GUPS-style scatter workload against a window segment in";
  note "the DRAM performance tier vs the NVM-class capacity tier.";
  let t =
    Table.create
      [ ("window tier", Table.Left); ("cycles / update", Table.Right); ("MUPS", Table.Right) ]
  in
  let rows =
    par_map
      (fun (label, tier) ->
      let platform =
        Sj_machine.Platform.with_capacity_tier Sj_machine.Platform.m3 ~size:(Size.gib 4)
      in
      let machine = Machine.create platform in
      let sys = Sj_core.Api.boot machine in
      let proc = Sj_kernel.Process.create ~name:"tiers" machine in
      let ctx = Api.context sys proc (Machine.core machine 0) in
      let vas = Api.vas_create ctx ~name:"v" ~mode:0o600 in
      let seg = Api.seg_alloc_anywhere ~tier ctx ~name:"win" ~size:(Size.mib 16) ~mode:0o600 in
      Api.seg_attach ctx vas seg ~prot:Prot.rw;
      let vh = Api.vas_attach ctx vas in
      Api.vas_switch ctx vh;
      let core = Api.core ctx in
      let rng = Sj_util.Rng.create ~seed:5 in
      let updates = 20_000 in
      let c0 = Core.cycles core in
      for _ = 1 to updates do
        let va = Segment.base seg + (Sj_util.Rng.int rng (Size.mib 16 / 8) * 8) in
        let v = Core.load64 core ~va in
        Core.store64 core ~va (Int64.logxor v 1L)
      done;
      let cycles = Core.cycles core - c0 in
      let seconds =
        Sj_machine.Cost_model.cycles_to_seconds (Machine.cost machine) cycles
      in
      [
        label;
        Table.cell_int (cycles / updates);
        Table.cell_float (float_of_int updates /. seconds /. 1e6);
      ])
      [ ("performance (DRAM)", `Performance); ("capacity (NVM-class)", `Capacity) ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let window_scaling () =
  section "Validation: GUPS window-size sensitivity (M3, 8 windows)";
  note "EXPERIMENTS.md scales Fig. 8's windows from the paper's 1 GiB to";
  note "16 MiB. This sweep shows the design ordering and ratios are";
  note "stable in window size (MAP degrades further as windows grow,";
  note "strengthening the paper's conclusion).";
  let t =
    Table.create ~title:"MUPS per process (64-update sets)"
      [
        ("window size", Table.Left);
        ("SpaceJMP", Table.Right);
        ("MP", Table.Right);
        ("MAP", Table.Right);
        ("SpaceJMP/MP", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun window_size ->
        let cfg =
          { Gups.default_config with windows = 8; window_size; window_visits = 200 }
        in
        let sj = Gups.run cfg ~design:Gups.Spacejmp in
        let mp = Gups.run cfg ~design:Gups.Mp in
        let map = Gups.run cfg ~design:Gups.Map in
        [
          Size.to_string window_size;
          Table.cell_float sj.Gups.mups;
          Table.cell_float mp.Gups.mups;
          Table.cell_float map.Gups.mups;
          Printf.sprintf "%.2fx" (sj.Gups.mups /. mp.Gups.mups);
        ])
      [ Size.mib 4; Size.mib 16; Size.mib 64 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t

let region_queries () =
  section "Ablation: region queries (samtools view) across storage designs (M1)";
  note "Fetch the reads in a small genomic window. File designs must";
  note "deserialize (BAM+index only the covering blocks); SpaceJMP keeps";
  note "records and index in memory and touches candidates directly.";
  let module Record = Sj_genomics.Record in
  let module Ops = Sj_genomics.Ops in
  let module View = Sj_genomics.View in
  let module Bam = Sj_genomics.Bam in
  let module Sam = Sj_genomics.Sam in
  let module Block_lz = Sj_compress.Block_lz in
  let platform = Sj_machine.Platform.m1 in
  let records =
    Record.generate ~seed:42 ~references:Record.default_references ~reads:30_000 ~read_len:100
  in
  let sorted =
    Ops.apply_permutation records (Ops.sort_permutation (Ops.host_only records) ~by:`Coordinate)
  in
  let rname = "chr1" and lo = 60_000 and hi = 64_000 in
  let machine = Machine.create platform in
  let core = Machine.core machine 0 in
  let measure f =
    let c0 = Core.cycles core in
    let n = f () in
    (n, Core.cycles core - c0)
  in
  let filter rs =
    List.length
      (List.filter
         (fun (r : Record.t) ->
           Record.is_mapped r && r.Record.rname = rname && r.Record.pos >= lo
           && r.Record.pos < hi)
         (Array.to_list rs))
  in
  (* SAM: parse the whole file. *)
  let sam_bytes = Sam.encode Record.default_references sorted in
  let n_sam, c_sam =
    measure (fun () ->
        Core.charge core (Sam.parse_cycles ~bytes:(Bytes.length sam_bytes));
        match Sam.decode sam_bytes with Ok rs -> filter rs | Error e -> failwith e)
  in
  (* BAM without index: decompress + decode everything. *)
  let bam_bytes, offsets = Bam.encode_indexed Record.default_references sorted in
  let raw_len = offsets.(Array.length offsets - 1) in
  let n_bam, c_bam =
    measure (fun () ->
        Core.charge core (Block_lz.decompress_cycles ~uncompressed:raw_len);
        Core.charge core (Bam.decode_cycles ~raw_bytes:raw_len);
        match Bam.decode bam_bytes with Ok rs -> filter rs | Error e -> failwith e)
  in
  (* BAM + index: only the covering blocks. *)
  let v = View.build Record.default_references sorted in
  let n_idx, c_idx = measure (fun () -> List.length (View.query ~charge_to:core v ~rname ~lo ~hi)) in
  (* SpaceJMP: switch in, walk the in-memory index, touch candidates. *)
  let n_sj, c_sj =
    let sys = Sj_core.Api.boot machine in
    let proc = Sj_kernel.Process.create ~name:"view" machine in
    let ctx = Sj_core.Api.context sys proc core in
    let span = Array.fold_left (fun a r -> a + Record.approx_bytes r) 0 sorted in
    let vas = Api.vas_create ctx ~name:"geno" ~mode:0o600 in
    let seg = Api.seg_alloc_anywhere ctx ~name:"recs" ~size:(span + Size.mib 1) ~mode:0o600 in
    Api.seg_attach ctx vas seg ~prot:Prot.rw;
    let vh = Api.vas_attach ctx vas in
    let addrs = Array.make (Array.length sorted) 0 in
    let cursor = ref (Segment.base seg) in
    Array.iteri
      (fun i r ->
        addrs.(i) <- !cursor;
        cursor := !cursor + Record.approx_bytes r)
      sorted;
    let index = Ops.build_index (Ops.host_only sorted) ~bin_bp:View.bin_bp in
    measure (fun () ->
        Api.vas_switch ctx vh;
        let d = Ops.in_memory sorted ~addrs ~core in
        let hits = ref 0 in
        List.iter
          (fun (e : Ops.index_entry) ->
            if e.bin_rname = rname && e.bin_id >= lo / View.bin_bp && e.bin_id <= (hi - 1) / View.bin_bp
            then
              for i = e.first to e.first + e.count - 1 do
                (match d.Ops.addrs with
                | Some a -> Core.touch core ~va:a.(i) ~access:Machine.Read
                | None -> ());
                let r = sorted.(i) in
                if r.Record.pos >= lo && r.Record.pos < hi then incr hits
              done)
          index;
        Api.switch_home ctx;
        !hits)
  in
  let t =
    Table.create ~title:(Printf.sprintf "query %s:%d-%d over 30k records" rname lo hi)
      [ ("design", Table.Left); ("hits", Table.Right); ("cycles", Table.Right); ("vs SpaceJMP", Table.Right) ]
  in
  List.iter
    (fun (name, hits, cycles) ->
      Table.add_row t
        [ name; Table.cell_int hits; Table.cell_int cycles;
          Printf.sprintf "%.1fx" (float_of_int cycles /. float_of_int c_sj) ])
    [
      ("SAM (full parse)", n_sam, c_sam);
      ("BAM (full decode)", n_bam, c_bam);
      ("BAM + index", n_idx, c_idx);
      ("SpaceJMP", n_sj, c_sj);
    ];
  Table.print t

(* region_queries stays serial: its designs share one machine/core so
   cycle counts compose; splitting it would change the measurement. *)
let run () =
  window_scaling ();
  tlb_tags ();
  translation_cache ();
  lock_design ();
  page_size ();
  snapshot_vs_copy ();
  memory_tiers ();
  region_queries ()
