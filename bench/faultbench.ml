(* Availability under faults (lib/fault): kill a RedisJMP writer while
   it holds the store's exclusive lock and measure what the survivors
   see. Not a paper figure — it exercises the crash-reclamation path
   (sec 3.1's lock discipline under the least graceful release) on both
   kernel backends. Deterministic simulated cycles throughout. *)

module Kv_avail = Sj_kvstore.Kv_avail
module Api = Sj_core.Api

let run () =
  Bench_common.section "Availability under faults: RedisJMP lock-holder crash";
  let cfg = Kv_avail.default_config in
  Bench_common.note
    "  %d reader clients, %d requests/phase, retry budget %d x %d cycles, seed %d"
    cfg.clients cfg.requests_per_client cfg.retry_attempts cfg.backoff_cycles cfg.seed;
  List.iter
    (fun (label, backend) ->
      let r = Kv_avail.run { cfg with backend } in
      Bench_common.note
        "  %-11s served %d | outage %d cycles (%d stalled reqs, %d cycles lost) | \
         recovery %d cycles | served %d | reclaims %d crashes %d"
        label r.served_before r.outage_cycles r.stalled_requests r.stall_cycles
        r.recovery_cycles r.served_after r.lock_reclaims r.crashes;
      Bench_common.note "  %-11s survivors_ok=%b lock_free=%b orphan_served=%b" label
        r.survivors_ok r.lock_free r.orphan_served)
    [ ("dragonfly", Api.Dragonfly); ("barrelfish", Api.Barrelfish) ]
