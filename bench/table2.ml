(* Table 2: breakdown of context switching on M2, in cycles, for both
   OS backends with and without TLB tags. Measured through the public
   API exactly as an application would see it. *)

open Sj_util
open Bench_common
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Prot = Sj_paging.Prot

let measure_switch ~backend ~tagged =
  let machine, sys, ctx = fresh_system ~backend () in
  let vas = Api.vas_create ctx ~name:"t2" ~mode:0o600 in
  if tagged then Api.vas_ctl ctx (`Request_tag vas);
  (* Non-lockable segment: the measurement isolates the switch path. *)
  let seg =
    Segment.create ~lockable:false ~charge_to:None ~machine ~name:"t2.seg"
      ~base:(Sj_kernel.Layout.next_global_base (Machine.sim_ctx machine) ~size:(Size.mib 1))
      ~size:(Size.mib 1) ~prot:Prot.rw ()
  in
  Sj_core.Registry.register_seg (Api.registry sys) seg;
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  Api.vas_switch ctx vh;
  Api.switch_home ctx;
  let core = Api.core ctx in
  let c0 = Core.cycles core in
  Api.vas_switch ctx vh;
  Core.cycles core - c0

let run () =
  section "Table 2: breakdown of context switching (M2, cycles)";
  note "Paper: CR3 130/224; syscall DF 357, BF 130; vas_switch DF 1127/807, BF 664/462.";
  let cost = Sj_machine.Cost_model.m2 in
  let t =
    Table.create
      [
        ("operation", Table.Left);
        ("DragonFly", Table.Right);
        ("DragonFly(tags)", Table.Right);
        ("Barrelfish", Table.Right);
        ("Barrelfish(tags)", Table.Right);
      ]
  in
  Table.add_row t
    [
      "CR3 load";
      Table.cell_int cost.cr3_load;
      Table.cell_int cost.cr3_load_tagged;
      Table.cell_int cost.cr3_load;
      Table.cell_int cost.cr3_load_tagged;
    ];
  Table.add_row t
    [
      "system call";
      Table.cell_int cost.syscall_dragonfly;
      Table.cell_int cost.syscall_dragonfly;
      Table.cell_int cost.syscall_barrelfish;
      Table.cell_int cost.syscall_barrelfish;
    ];
  (* The four measured configurations are independent systems; fan them
     across the pool and emit the row in fixed column order. *)
  let measured =
    par_map
      (fun (backend, tagged) -> measure_switch ~backend ~tagged)
      [
        (Api.Dragonfly, false);
        (Api.Dragonfly, true);
        (Api.Barrelfish, false);
        (Api.Barrelfish, true);
      ]
  in
  Table.add_row t ("vas_switch (measured)" :: List.map Table.cell_int measured);
  Table.print t
