(* Figure 6: impact of TLB tagging (M3) on a random page-touch
   workload. For a working set of N pages, load one cache line from a
   random page per iteration, writing CR3 between iterations:

   - "Switch (Tag Off)": untagged CR3 write flushes the TLB, so every
     touch walks the page table;
   - "Switch (Tag On)" : translations survive the switch until the
     working set exceeds TLB capacity;
   - "No context switch": the TLB warms up normally.

   The paper's shape: tag-on tracks the no-switch floor for small sets
   and converges to tag-off as the set outgrows the TLB. *)

open Sj_util
open Bench_common
module Vmspace = Sj_kernel.Vmspace
module Vm_object = Sj_kernel.Vm_object
module Prot = Sj_paging.Prot

let touch_latency ~pages ~mode =
  let platform = Sj_machine.Platform.m3 in
  let machine = Machine.create platform in
  let core = Machine.core machine 0 in
  let vms = Vmspace.create machine ~charge_to:None in
  let obj = Vm_object.create machine ~size:(pages * Addr.page_size) ~charge_to:None in
  let base = Size.gib 1 in
  Vmspace.map_object vms ~charge_to:None ~base ~prot:Prot.rw obj;
  let pt = Vmspace.page_table vms in
  let tag = match mode with `Tag_on -> 7 | `Tag_off | `No_switch -> 0 in
  Core.set_page_table core ~tag (Some pt);
  let rng = Rng.create ~seed:99 in
  let iterations = 4000 in
  (* Warm-up pass so the no-switch and tag-on modes start from steady
     state, as the hardware measurement does. *)
  for _ = 1 to iterations do
    Core.touch core ~va:(base + (Rng.int rng pages * Addr.page_size)) ~access:Machine.Read
  done;
  let cr3_cost =
    match mode with
    | `No_switch -> 0
    | `Tag_off -> (Machine.cost machine).cr3_load
    | `Tag_on -> (Machine.cost machine).cr3_load_tagged
  in
  let t0 = Core.cycles core in
  for _ = 1 to iterations do
    (match mode with
    | `No_switch -> ()
    | `Tag_off | `Tag_on -> Core.set_page_table core ~tag (Some pt));
    Core.touch core ~va:(base + (Rng.int rng pages * Addr.page_size)) ~access:Machine.Read
  done;
  (* Report the page-touch latency net of the CR3 write itself, as the
     paper's plot does (it shows touch latency, the switch is the
     perturbation). *)
  let total = Core.cycles core - t0 in
  (float_of_int total /. float_of_int iterations) -. float_of_int cr3_cost

let run () =
  section "Figure 6: TLB tagging impact on random page touches (M3)";
  note "Paper: tag-on tracks the no-switch floor for small working sets,";
  note "converging to tag-off once the set exceeds TLB capacity.";
  let t =
    Table.create ~title:"page-touch latency [cycles]"
      [
        ("pages (4 KiB)", Table.Right);
        ("switch (tag off)", Table.Right);
        ("switch (tag on)", Table.Right);
        ("no context switch", Table.Right);
      ]
  in
  (* Each (pages, mode) trial simulates its own machine; fan the page
     counts across the pool, three modes per task. *)
  let rows =
    par_map
      (fun pages ->
        [
          string_of_int pages;
          Table.cell_float ~decimals:1 (touch_latency ~pages ~mode:`Tag_off);
          Table.cell_float ~decimals:1 (touch_latency ~pages ~mode:`Tag_on);
          Table.cell_float ~decimals:1 (touch_latency ~pages ~mode:`No_switch);
        ])
      [ 64; 128; 256; 512; 768; 1024; 1536; 2048 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t
