(* Wall-clock benchmark harness over the shared suite (lib/bench_kit).

   Two phases, one refusal discipline:

   - serial phase: each bench runs with the host fast path disabled and
     enabled (best of [repeats]); simulated fingerprints must be
     bit-identical between the two modes or the harness exits 2.
   - parallel phase: the suite's shards are fanned across a domain pool
     in both modes (best batch of [repeats]); every fingerprint must
     equal its serial counterpart or the harness exits 2 before any
     report is written.

   Usage: harness [--quick] [--check] [--out FILE] [-j N]
     --quick   small problem sizes (seconds; used by `dune runtest`)
     --check   validate the emitted JSON (schema + equivalence); exit
               non-zero on any failure
     --out F   report path (default BENCH_fastpath.json)
     -j N      domain-pool size for the parallel phase (default: host
               cores via Par.default_size) *)

open Sj_util
module Suite = Sj_bench.Suite
module Report = Sj_bench.Report

let () =
  let quick = ref false and check = ref false and out = ref "BENCH_fastpath.json" in
  let jobs = ref (Par.default_size ()) in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--check" :: rest ->
      check := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse rest
      | _ ->
        Printf.eprintf "harness: -j expects a positive integer (got %s)\n" n;
        exit 2)
    | arg :: _ ->
      Printf.eprintf
        "usage: harness [--quick] [--check] [--out FILE] [-j N] (got %s)\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Fail on an unwritable report path before spending the run. *)
  let oc =
    try open_out !out
    with Sys_error msg ->
      Printf.eprintf "harness: cannot write report: %s\n" msg;
      exit 2
  in
  let q = !quick in
  let repeats = if q then 1 else 5 in
  let benches = Suite.suite ~quick:q in
  Printf.printf "bench harness (%s mode, best of %d, -j %d)\n%!"
    (if q then "quick" else "full")
    repeats !jobs;

  (* Serial phase. The two modes' repeats are interleaved (slow, fast,
     slow, fast, ...) rather than run as two blocks: slow-moving host
     noise — frequency drift, a neighbouring process waking up — then
     lands on both modes alike instead of taxing whichever block ran
     second, so best-of-N compares like with like. Repeats of the same
     mode must also agree on the fingerprint — a repeat that shifts it
     means the simulation itself is nondeterministic, which is worse
     than a fast-path bug. *)
  let serial_pair b =
    let check_fp first t =
      if t.Suite.fp <> first.Suite.fp then begin
        Printf.eprintf
          "FATAL: %s: fingerprint changed between repeats (same mode)\n  was: %s\n  now: %s\n"
          b.Suite.bname
          (Suite.pp_fingerprint first.Suite.fp)
          (Suite.pp_fingerprint t.Suite.fp);
        exit 2
      end
    in
    let first_slow = Suite.run_one ~fast:false b in
    let first_fast = Suite.run_one ~fast:true b in
    let best_slow = ref first_slow and best_fast = ref first_fast in
    let fast_walls = Array.make repeats first_fast.Suite.wall in
    for r = 2 to repeats do
      let s = Suite.run_one ~fast:false b in
      check_fp first_slow s;
      if s.Suite.wall < !best_slow.Suite.wall then best_slow := s;
      let f = Suite.run_one ~fast:true b in
      check_fp first_fast f;
      fast_walls.(r - 1) <- f.Suite.wall;
      if f.Suite.wall < !best_fast.Suite.wall then best_fast := f
    done;
    (!best_slow, !best_fast, fast_walls)
  in
  let results =
    List.map
      (fun b ->
        Printf.printf "  %-12s%!" b.Suite.bname;
        let slow, fast, fast_walls = serial_pair b in
        let equal = slow.Suite.fp = fast.Suite.fp in
        Printf.printf " slow %7.3fs  fast %7.3fs  speedup %5.2fx  %s\n%!"
          slow.Suite.wall fast.Suite.wall
          (slow.Suite.wall /. fast.Suite.wall)
          (if equal then "equal" else "DIVERGED");
        if not equal then begin
          Printf.eprintf
            "FATAL: %s: fast/slow fingerprints diverge\n  slow: %s\n  fast: %s\n"
            b.Suite.bname
            (Suite.pp_fingerprint slow.Suite.fp)
            (Suite.pp_fingerprint fast.Suite.fp);
          exit 2
        end;
        (b, slow, fast, fast_walls))
      benches
  in
  let serial_slow = List.map (fun (_, s, _, _) -> s) results in
  let serial_fast = List.map (fun (_, _, f, _) -> f) results in

  (* Parallel phase: same suite, its shards fanned across the pool,
     both modes. *)
  let shard_count =
    List.fold_left (fun a b -> a + Array.length b.Suite.shards) 0 benches
  in
  Printf.printf "parallel phase: %d benches (%d shards) across %d domain(s)\n%!"
    (List.length benches) shard_count !jobs;
  (* Best of [repeats] for the batch wall, symmetric with the serial
     phase — including its interleaving: slow and fast batches
     alternate so host drift taxes both modes alike. Fingerprints must
     also hold still across batches. *)
  let batch_pair pool =
    let check_batch rs0 rs =
      if not (Suite.fingerprints_equal rs0 rs) then begin
        Printf.eprintf
          "FATAL: parallel fingerprints changed between repeats (-j %d)\n" !jobs;
        exit 2
      end
    in
    let ((slow0, _) as s0) = Suite.run_parallel pool ~fast:false benches in
    (* The fast batches also record shard -> pool-slot placement; the
       report carries the placement of the best (reported) batch. *)
    let ((fast0, _, _) as f0) = Suite.run_parallel_placed pool ~fast:true benches in
    let best_slow = ref s0 and best_fast = ref f0 in
    for _ = 2 to repeats do
      let ((rs, w) as s) = Suite.run_parallel pool ~fast:false benches in
      check_batch slow0 rs;
      if w < snd !best_slow then best_slow := s;
      let ((rf, _, w) as f) = Suite.run_parallel_placed pool ~fast:true benches in
      check_batch fast0 rf;
      let _, _, best_w = !best_fast in
      if w < best_w then best_fast := f
    done;
    (!best_slow, !best_fast)
  in
  let (par_slow, _), (par_fast, placements, par_wall) =
    Par.with_pool ~size:!jobs (fun pool -> batch_pair pool)
  in
  let report_divergence tag serial par =
    List.iter2
      (fun s p ->
        if s.Suite.fp <> p.Suite.fp then
          Printf.eprintf "  %s (%s):\n    serial:   %s\n    parallel: %s\n"
            s.Suite.tname tag
            (Suite.pp_fingerprint s.Suite.fp)
            (Suite.pp_fingerprint p.Suite.fp))
      serial par
  in
  if
    not
      (Suite.fingerprints_equal serial_slow par_slow
      && Suite.fingerprints_equal serial_fast par_fast)
  then begin
    Printf.eprintf "FATAL: serial/parallel fingerprints diverge (-j %d)\n" !jobs;
    report_divergence "slow" serial_slow par_slow;
    report_divergence "fast" serial_fast par_fast;
    exit 2
  end;
  (* Serial aggregate is the best whole-suite pass: the minimum, over
     repeat index, of that repeat's summed fast walls. Symmetric with
     the parallel side, which takes its best batch of [repeats] — both
     are a min-of-N of the same total, so the comparison measures
     scheduling, not sampling luck. *)
  let wall_serial =
    let sums = Array.make repeats 0. in
    List.iter
      (fun (_, _, _, ws) -> Array.iteri (fun r w -> sums.(r) <- sums.(r) +. w) ws)
      results;
    Array.fold_left min sums.(0) sums
  in
  Printf.printf "  parallel batch %7.3fs vs serial %7.3fs  speedup %5.2fx  equal\n%!"
    par_wall wall_serial (wall_serial /. par_wall);

  let breports =
    List.map
      (fun (b, slow, fast, _) ->
        let find rs = List.find (fun t -> t.Suite.tname = b.Suite.bname) rs in
        let ps = find par_slow and pf = find par_fast in
        {
          Report.name = b.Suite.bname;
          shards = Array.length b.Suite.shards;
          placement =
            (try List.assoc b.Suite.bname placements with Not_found -> [||]);
          equal_between_modes = slow.Suite.fp = fast.Suite.fp;
          equal_serial_parallel =
            slow.Suite.fp = ps.Suite.fp && fast.Suite.fp = pf.Suite.fp;
          wall_slow = slow.Suite.wall;
          wall_fast = fast.Suite.wall;
          wall_parallel = pf.Suite.wall;
          minor_words = fast.Suite.minor_words;
          major_words = fast.Suite.major_words;
          simulated = fast.Suite.fp;
        })
      results
  in
  let report =
    {
      Report.quick = q;
      jobs = !jobs;
      cores = Domain.recommended_domain_count ();
      detected_cores = Report.detected_cores ();
      ocaml_version = Sys.ocaml_version;
      benches = breports;
      wall_serial;
      wall_parallel = par_wall;
    }
  in
  output_string oc (Report.to_json report);
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if !check then
    match Report.check_file !out with
    | Ok () -> print_endline "check: OK"
    | Error es ->
      List.iter (fun e -> Printf.eprintf "check: %s\n" e) es;
      prerr_endline "check: FAILED";
      exit 1
