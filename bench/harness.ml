(* Wall-clock benchmark of the simulator's host-side fast path.

   Runs a fixed suite -- bulk-access micros, GUPS, and the kvstore
   simulation -- once with the fast path disabled and once enabled,
   recording *simulated* cycles (which must be bit-identical between the
   two modes; the run aborts if not) and *host* wall-clock seconds
   (which is what the fast path improves). Results go to a JSON report.

   Usage: harness [--quick] [--check] [--out FILE]
     --quick   small problem sizes (seconds; used by `dune runtest`)
     --check   validate the emitted JSON (schema + equivalence); exit
               non-zero on any failure
     --out F   report path (default BENCH_fastpath.json) *)

open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Pm = Sj_mem.Phys_mem
module Page_table = Sj_paging.Page_table
module Prot = Sj_paging.Prot
module Tlb = Sj_tlb.Tlb
module Gups = Sj_gups.Gups
module Kv_sim = Sj_kvstore.Kv_sim

(* A fingerprint is the simulated-side outcome of a bench: cycles, TLB
   stats, data checksums. Fast and slow runs must produce equal ones. *)
type fingerprint = (string * int) list

let core_fingerprint core extra : fingerprint =
  let s = Tlb.stats (Core.tlb core) in
  [
    ("cycles", Core.cycles core);
    ("tlb_hits", s.hits);
    ("tlb_misses", s.misses);
    ("tlb_insertions", s.insertions);
  ]
  @ extra

(* ---- micro benches: a hot 4-page region on a small machine ---- *)

let micro_platform : Platform.t =
  {
    Platform.m2 with
    name = "bench-micro";
    mem_size = Size.mib 128;
    sockets = 2;
    cores_per_socket = 2;
  }

(* The region fits the simulated L1, so after warm-up every line access
   is a hit and the wall clock is pure simulator bookkeeping —
   translation, per-line charging, and byte copies — which is exactly
   the overhead the fast path attacks. *)
let micro_pages = 4
let micro_base = 0x4000_0000
let micro_bytes = micro_pages * Addr.page_size

let micro_setup () =
  let m = Machine.create micro_platform in
  let pt = Page_table.create (Machine.mem m) in
  let frames = Pm.alloc_frames (Machine.mem m) ~n:micro_pages in
  Page_table.map_range pt ~va:micro_base ~frames ~prot:Prot.rw;
  let core = Machine.core m 0 in
  Core.set_page_table core ~tag:1 (Some pt);
  core

let bench_load_bytes ~iters () =
  let core = micro_setup () in
  Core.store_bytes core ~va:micro_base
    (Bytes.init 4096 (fun i -> Char.chr (i land 0xff)));
  let span = 4096 in
  let sum = ref 0 in
  for i = 0 to iters - 1 do
    let off = (i * 4099 * 8) mod (micro_bytes - span) in
    let b = Core.load_bytes core ~va:(micro_base + off) ~len:span in
    sum := !sum + Char.code (Bytes.get b (i mod span))
  done;
  core_fingerprint core [ ("checksum", !sum) ]

let bench_memcpy ~iters () =
  let core = micro_setup () in
  Core.store_bytes core ~va:micro_base
    (Bytes.init 8192 (fun i -> Char.chr ((i * 7) land 0xff)));
  let half = micro_bytes / 2 in
  for i = 0 to iters - 1 do
    (* Ping-pong the two halves so both stay written-to. *)
    let src = micro_base + (i land 1) * half in
    let dst = micro_base + ((i + 1) land 1) * half in
    Core.memcpy core ~dst ~src ~len:half
  done;
  let tail = Core.load_bytes core ~va:(micro_base + half) ~len:256 in
  let sum = ref 0 in
  Bytes.iter (fun ch -> sum := !sum + Char.code ch) tail;
  core_fingerprint core [ ("checksum", !sum) ]

let bench_memset ~iters () =
  let core = micro_setup () in
  let len = micro_bytes / 2 in
  for i = 0 to iters - 1 do
    let off = (i * 4099 * 8) mod (micro_bytes - len) in
    Core.memset core ~va:(micro_base + off) ~len (Char.chr (i land 0xff))
  done;
  let b = Core.load_bytes core ~va:micro_base ~len:4096 in
  let sum = ref 0 in
  Bytes.iter (fun ch -> sum := !sum + Char.code ch) b;
  core_fingerprint core [ ("checksum", !sum) ]

(* ---- workload benches: whole simulations through either path ---- *)

let bench_gups ~visits () =
  let cfg =
    {
      Gups.default_config with
      platform = Platform.m1;
      windows = 4;
      (* Small windows keep setup (page-table population) off the
         measurement; the visit loop dominates the wall clock. *)
      window_size = Size.mib 2;
      updates_per_set = 64;
      window_visits = visits;
      tags = true;
    }
  in
  let r = Gups.run cfg ~design:Gups.Spacejmp in
  [ ("cycles", r.cycles); ("updates", r.updates) ]

let bench_kvstore ~duration () =
  let cfg =
    {
      Kv_sim.default_config with
      clients = 8;
      set_fraction = 0.2;
      duration_cycles = duration;
    }
  in
  let r = Kv_sim.run cfg in
  [
    ("requests", r.requests);
    ("gets", r.gets);
    ("sets", r.sets);
    ("lock_wait_cycles", r.lock_wait_cycles);
    ("switches", r.switches);
    ("tlb_misses", r.tlb_misses);
  ]

(* ---- driver ---- *)

type bench_result = {
  name : string;
  fp : fingerprint; (* shared: proven equal between modes *)
  equal : bool;
  wall_slow : float;
  wall_fast : float;
}

let time_run f =
  let t0 = Unix.gettimeofday () in
  let fp = f () in
  (Unix.gettimeofday () -. t0, fp)

let run_bench ~repeats (name, f) =
  Printf.printf "  %-12s" name;
  let best_slow = ref infinity and best_fast = ref infinity in
  let fp_slow = ref [] and fp_fast = ref [] in
  for _ = 1 to repeats do
    let t, fp = Machine.with_fast_path false (fun () -> time_run f) in
    if t < !best_slow then best_slow := t;
    fp_slow := fp;
    let t, fp = Machine.with_fast_path true (fun () -> time_run f) in
    if t < !best_fast then best_fast := t;
    fp_fast := fp
  done;
  let equal = !fp_slow = !fp_fast in
  Printf.printf " slow %7.3fs  fast %7.3fs  speedup %5.2fx  %s\n%!" !best_slow
    !best_fast
    (!best_slow /. !best_fast)
    (if equal then "equal" else "DIVERGED");
  if not equal then begin
    let pp fp = String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fp) in
    Printf.eprintf "FATAL: %s: fast/slow fingerprints diverge\n  slow: %s\n  fast: %s\n"
      name (pp !fp_slow) (pp !fp_fast);
    exit 2
  end;
  { name; fp = !fp_fast; equal; wall_slow = !best_slow; wall_fast = !best_fast }

let json_of_results ~quick results =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"spacejmp-bench-fastpath/1\",\n";
  Buffer.add_string b
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if quick then "quick" else "full"));
  Buffer.add_string b "  \"benches\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b "    {\n";
      Buffer.add_string b (Printf.sprintf "      \"name\": \"%s\",\n" r.name);
      Buffer.add_string b
        (Printf.sprintf "      \"equal_between_modes\": %b,\n" r.equal);
      Buffer.add_string b
        (Printf.sprintf "      \"wall_slow_s\": %.6f,\n" r.wall_slow);
      Buffer.add_string b
        (Printf.sprintf "      \"wall_fast_s\": %.6f,\n" r.wall_fast);
      Buffer.add_string b
        (Printf.sprintf "      \"speedup\": %.3f,\n" (r.wall_slow /. r.wall_fast));
      Buffer.add_string b "      \"simulated\": {";
      List.iteri
        (fun j (k, v) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b (Printf.sprintf "\"%s\": %d" k v))
        r.fp;
      Buffer.add_string b "}\n";
      Buffer.add_string b
        (if i = List.length results - 1 then "    }\n" else "    },\n"))
    results;
  Buffer.add_string b "  ],\n";
  let tot_slow = List.fold_left (fun a r -> a +. r.wall_slow) 0. results in
  let tot_fast = List.fold_left (fun a r -> a +. r.wall_fast) 0. results in
  Buffer.add_string b "  \"aggregate\": {\n";
  Buffer.add_string b (Printf.sprintf "    \"wall_slow_s\": %.6f,\n" tot_slow);
  Buffer.add_string b (Printf.sprintf "    \"wall_fast_s\": %.6f,\n" tot_fast);
  Buffer.add_string b
    (Printf.sprintf "    \"speedup\": %.3f\n" (tot_slow /. tot_fast));
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

(* Minimal structural validation of the emitted report: no JSON library
   in the tree, so check nesting balance (outside strings) and the
   presence of required keys. *)
let check_json path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let depth = ref 0 and in_str = ref false and ok = ref true in
  String.iteri
    (fun i ch ->
      if !in_str then begin
        if ch = '"' && (i = 0 || s.[i - 1] <> '\\') then in_str := false
      end
      else
        match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  if !depth <> 0 || !in_str then ok := false;
  let required =
    [
      "\"schema\": \"spacejmp-bench-fastpath/1\"";
      "\"benches\"";
      "\"aggregate\"";
      "\"speedup\"";
      "\"wall_slow_s\"";
      "\"wall_fast_s\"";
      "\"simulated\"";
    ]
  in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      if not (contains key) then begin
        Printf.eprintf "check: missing key %s in %s\n" key path;
        ok := false
      end)
    required;
  if contains "\"equal_between_modes\": false" then begin
    Printf.eprintf "check: report records a fast/slow divergence\n";
    ok := false
  end;
  !ok

let () =
  let quick = ref false and check = ref false and out = ref "BENCH_fastpath.json" in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--check" :: rest ->
      check := true;
      parse rest
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | arg :: _ ->
      Printf.eprintf "usage: harness [--quick] [--check] [--out FILE] (got %s)\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Fail on an unwritable report path before spending the run. *)
  let oc =
    try open_out !out
    with Sys_error msg ->
      Printf.eprintf "harness: cannot write report: %s\n" msg;
      exit 2
  in
  let q = !quick in
  let repeats = if q then 1 else 3 in
  let suite =
    [
      ("load_bytes", bench_load_bytes ~iters:(if q then 5_000 else 150_000));
      ("memcpy", bench_memcpy ~iters:(if q then 5_000 else 150_000));
      ("memset", bench_memset ~iters:(if q then 8_000 else 250_000));
      ("gups", bench_gups ~visits:(if q then 400 else 4_000));
      ("kvstore", bench_kvstore ~duration:(if q then 1_000_000 else 5_000_000));
    ]
  in
  Printf.printf "fast-path harness (%s mode, best of %d)\n%!"
    (if q then "quick" else "full")
    repeats;
  let results = List.map (run_bench ~repeats) suite in
  let json = json_of_results ~quick:q results in
  output_string oc json;
  close_out oc;
  Printf.printf "wrote %s\n%!" !out;
  if !check then
    if check_json !out then print_endline "check: OK"
    else begin
      prerr_endline "check: FAILED";
      exit 1
    end
