(* Figures 8 and 9: GUPS on M3.

   Fig. 8: million-updates-per-second (per process) against the number
   of address spaces (windows), for the SpaceJMP / MP / MAP designs and
   update-set sizes 16 and 64.

   Fig. 9: for the SpaceJMP runs, the VAS-switch rate and TLB-miss rate
   over the same sweep.

   Windows are scaled to 16 MiB (paper: 1 GiB) — see EXPERIMENTS.md for
   why the scaling preserves the comparison. *)

open Sj_util
open Bench_common
module Gups = Sj_gups.Gups

let window_counts = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let cfg ~windows ~updates =
  {
    Gups.default_config with
    windows;
    updates_per_set = updates;
    window_size = Size.mib 16;
    window_visits = 300;
  }

let run () =
  section "Figure 8: GUPS throughput by design (M3, 16 MiB windows)";
  note "Paper shape: all equal at 1 window; MAP collapses immediately;";
  note "SpaceJMP >= MP everywhere; MP drops when slaves oversubscribe cores.";
  let t =
    Table.create ~title:"MUPS per process"
      [
        ("windows", Table.Right);
        ("SpaceJMP(64)", Table.Right);
        ("MP(64)", Table.Right);
        ("MAP(64)", Table.Right);
        ("SpaceJMP(16)", Table.Right);
        ("MP(16)", Table.Right);
        ("MAP(16)", Table.Right);
      ]
  in
  (* One task per window count (six Gups runs, each its own machine);
     results come back in window-count order for both figures. *)
  let trials =
    par_map
      (fun windows ->
        let run design updates = Gups.run (cfg ~windows ~updates) ~design in
        let sj64 = run Gups.Spacejmp 64 in
        let mp64 = run Gups.Mp 64 in
        let map64 = run Gups.Map 64 in
        let sj16 = run Gups.Spacejmp 16 in
        let mp16 = run Gups.Mp 16 in
        let map16 = run Gups.Map 16 in
        (windows, sj64, mp64, map64, sj16, mp16, map16))
      window_counts
  in
  List.iter
    (fun (windows, sj64, mp64, map64, sj16, mp16, map16) ->
      Table.add_row t
        [
          string_of_int windows;
          Table.cell_float sj64.Gups.mups;
          Table.cell_float mp64.Gups.mups;
          Table.cell_float map64.Gups.mups;
          Table.cell_float sj16.Gups.mups;
          Table.cell_float mp16.Gups.mups;
          Table.cell_float map16.Gups.mups;
        ])
    trials;
  Table.print t;
  section "Figure 9: GUPS switch and TLB-miss rates (SpaceJMP, tags off)";
  note "Paper shape: both rates are flat-to-slowly-varying in the window";
  note "count; misses dominate switches by roughly two orders of magnitude.";
  let t9 =
    Table.create ~title:"rate [1k/sec]"
      [
        ("windows", Table.Right);
        ("VAS switches (64)", Table.Right);
        ("TLB misses (64)", Table.Right);
        ("VAS switches (16)", Table.Right);
        ("TLB misses (16)", Table.Right);
      ]
  in
  List.iter
    (fun (windows, (sj64 : Gups.result), _, _, (sj16 : Gups.result), _, _) ->
      Table.add_row t9
        [
          string_of_int windows;
          Table.cell_float (sj64.switches_per_sec /. 1e3);
          Table.cell_float (sj64.tlb_misses_per_sec /. 1e3);
          Table.cell_float (sj16.switches_per_sec /. 1e3);
          Table.cell_float (sj16.tlb_misses_per_sec /. 1e3);
        ])
    trials;
  Table.print t9
