(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (sec 5), plus the ablations DESIGN.md calls out and a
   bechamel micro section.

   Usage:
     main.exe [-j N] [--quick]                 run everything
     main.exe [-j N] [--quick] fig1 fig10 ...  run selected experiments
   Experiments: table1 fig1 table2 fig6 fig7 fig8 fig10 fig11 ablations checker micro des faults cluster compartments explore fork
   (fig8 includes fig9; fig11 includes fig12). --quick selects CI
   sizes for the experiments that have one (cluster).

   -j N fans each experiment's independent trials across N domains
   (default: host cores). Every trial simulates its own machine, so the
   output is byte-identical to -j 1; only the wall clock changes. *)

let table1 () =
  Bench_common.section "Table 1: large-memory platforms (simulated)";
  List.iter
    (fun p -> Format.printf "  %a@." Sj_machine.Platform.pp p)
    [ Sj_machine.Platform.m1; Sj_machine.Platform.m2; Sj_machine.Platform.m3 ]

let experiments =
  [
    ("table1", table1);
    ("fig1", Fig1.run);
    ("table2", Table2.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8_9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11_12.run);
    ("ablations", Ablations.run);
    ("checker", Checker_eval.run);
    ("micro", Micro.run);
    ("des", Desbench.run);
    ("faults", Faultbench.run);
    ("cluster", Clusterbench.run);
    ("compartments", Compartbench.run);
    ("explore", Explorebench.run);
    ("fork", Forkbench.run);
  ]

let () =
  let jobs = ref (Sj_util.Par.default_size ()) in
  let rec parse_jobs = function
    | "-j" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n >= 1 ->
        jobs := n;
        parse_jobs rest
      | _ ->
        Printf.eprintf "main: -j expects a positive integer (got %s)\n" n;
        exit 1)
    | "--quick" :: rest ->
      Bench_common.quick := true;
      parse_jobs rest
    | args -> args
  in
  let requested =
    match parse_jobs (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst experiments
    | names -> names
  in
  Bench_common.jobs := !jobs;
  print_endline "SpaceJMP reproduction benchmarks (simulated cycles unless noted)";
  Printf.printf "(-j %d: trials fan across %d domain(s); output is order-stable)\n"
    !jobs !jobs;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1)
    requested
