(* Shared helpers for the benchmark harness. *)
open Sj_util
module Machine = Sj_machine.Machine
module Core = Machine.Core
module Platform = Sj_machine.Platform
module Cost_model = Sj_machine.Cost_model

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* A fresh machine + booted system + one process context on core 0. *)
let fresh_system ?(platform = Platform.m2) ?(backend = Sj_core.Api.Dragonfly) () =
  let machine = Machine.create platform in
  let sys = Sj_core.Api.boot ~backend machine in
  let proc = Sj_kernel.Process.create ~name:"bench" machine in
  let ctx = Sj_core.Api.context sys proc (Machine.core machine 0) in
  (machine, sys, ctx)

let ms_of_cycles platform cycles =
  Cost_model.cycles_to_ms (platform : Platform.t).cost cycles

let pow2_label bytes = Printf.sprintf "2^%d" (Size.log2 bytes)

(* ---- domain parallelism for the experiment drivers ----

   Experiments fan independent trials (each builds its own machine, so
   each carries its own Sim_ctx) across one shared pool and then emit
   rows serially, in trial order — so the printed tables are
   byte-identical to a serial run no matter what -j is. *)

let jobs = ref 1

(* Set by main.ml's --quick: experiments that have a CI-sized mode
   (currently `cluster`) read it; the table/figure experiments ignore
   it. The standalone harness.exe has its own --quick. *)
let quick = ref false

let pool_cell = ref None

let pool () =
  match !pool_cell with
  | Some p -> p
  | None ->
    let p = Par.create ~size:!jobs () in
    pool_cell := Some p;
    p

(* Order-preserving parallel map. Trials are packed into a few
   contiguous chunks per domain rather than one task per trial, so a
   long trial list pays per-chunk scheduling while mildly oversubscribed
   chunks (4 per domain) still balance uneven trial costs. With -j 1
   this degrades to an inline [List.map] on the submitting domain. *)
let par_map f xs =
  let p = pool () in
  Par.map_sharded p ~shards:(4 * Par.size p) f xs
