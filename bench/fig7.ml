(* Figure 7: SpaceJMP vs URPC as a local RPC mechanism (Barrelfish, M2).

   An RPC client sends a 64-bit key and receives a variable-sized
   payload. URPC L runs client and server on one socket, URPC X across
   sockets. The SpaceJMP variant switches into the server's VAS and
   copies the payload out directly.

   Paper shape: intra-socket URPC wins only for small messages; across
   sockets, or at larger sizes, SpaceJMP wins. *)

open Sj_util
open Bench_common
module Api = Sj_core.Api
module Segment = Sj_core.Segment
module Prot = Sj_paging.Prot
module Urpc = Sj_ipc.Urpc

let urpc_latency ~cross ~size =
  let platform = Sj_machine.Platform.m2 in
  let machine = Machine.create platform in
  let client = Machine.core machine 0 in
  let server =
    Machine.core machine (if cross then platform.cores_per_socket else 1)
  in
  let ch = Urpc.create machine ~a:client ~b:server () in
  let c0 = Core.cycles client and s0 = Core.cycles server in
  ignore (Urpc.roundtrip ch ~client ~server ~request:(Bytes.create 8) ~reply_len:size);
  Core.cycles client - c0 + (Core.cycles server - s0)

let spacejmp_latency ~size =
  let _, _, ctx = fresh_system ~backend:Api.Barrelfish () in
  let vas = Api.vas_create ctx ~name:"rpc.server" ~mode:0o666 in
  let seg = Api.seg_alloc_anywhere ctx ~name:"rpc.data" ~size:(Size.mib 4) ~mode:0o666 in
  Api.seg_ctl ctx (`Cache_translations seg);
  Api.seg_attach ctx vas seg ~prot:Prot.rw;
  let vh = Api.vas_attach ctx vas in
  (* Warm: enter once so attach costs are off the path. *)
  Api.vas_switch ctx vh;
  Api.switch_home ctx;
  let core = Api.core ctx in
  (* Local buffer in the process's data region. *)
  let local = Sj_kernel.Layout.data_base in
  let c0 = Core.cycles core in
  Api.vas_switch ctx vh;
  Core.memcpy core ~dst:local ~src:(Segment.base seg) ~len:size;
  Api.switch_home ctx;
  Core.cycles core - c0

let run () =
  section "Figure 7: URPC vs SpaceJMP latency by transfer size (M2, Barrelfish)";
  note "Paper shape: URPC-local wins only for small payloads; SpaceJMP";
  note "beats cross-socket URPC everywhere and all URPC at large sizes.";
  let t =
    Table.create ~title:"round-trip latency [cycles]"
      [
        ("transfer", Table.Left);
        ("SpaceJMP", Table.Right);
        ("URPC L", Table.Right);
        ("URPC X", Table.Right);
      ]
  in
  (* All three measurements for one size form a task; sizes fan across
     the pool (every measurement builds a fresh machine/system). *)
  let rows =
    par_map
      (fun size ->
        [
          Size.to_string size;
          Table.cell_int (spacejmp_latency ~size);
          Table.cell_int (urpc_latency ~cross:false ~size);
          Table.cell_int (urpc_latency ~cross:true ~size);
        ])
      [ 4; 64; 256; 1024; 4096; 16384; 65536; 262144 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t
