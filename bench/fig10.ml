(* Figure 10: Redis vs RedisJMP throughput (M1, 12 schedulable cores).

   (a) GET throughput vs clients: RedisJMP (with/without tags), a
       single classic Redis, and six classic instances;
   (b) SET throughput vs clients: RedisJMP vs classic Redis;
   (c) throughput vs SET fraction at 12 clients.

   Paper shapes: a lone RedisJMP client is ~4x a lone classic client;
   RedisJMP saturates near 1M GET/s, above six classic instances;
   SET throughput is capped by the exclusive segment lock; even 10%
   SETs costs most of the read throughput. *)

open Sj_util
open Bench_common
module Kv = Sj_kvstore.Kv_sim

let client_counts = [ 1; 2; 4; 8; 12; 16; 24; 48; 100 ]

let run_mode ~clients ~set_fraction mode =
  Kv.run { Kv.default_config with clients; set_fraction; mode }

let run () =
  section "Figure 10a: GET throughput vs clients (M1)";
  let t =
    Table.create ~title:"requests/second"
      [
        ("clients", Table.Right);
        ("RedisJMP", Table.Right);
        ("RedisJMP(tags)", Table.Right);
        ("Redis 6x", Table.Right);
        ("Redis", Table.Right);
      ]
  in
  (* Every Kv_sim.run simulates a fresh machine, so client counts fan
     across the pool (four store variants per task). *)
  let rows =
    par_map
      (fun clients ->
        let rj = run_mode ~clients ~set_fraction:0.0 (Kv.Redisjmp { tags = false }) in
        let rjt = run_mode ~clients ~set_fraction:0.0 (Kv.Redisjmp { tags = true }) in
        let r6 = run_mode ~clients ~set_fraction:0.0 (Kv.Redis { instances = 6 }) in
        let r1 = run_mode ~clients ~set_fraction:0.0 (Kv.Redis { instances = 1 }) in
        [
          string_of_int clients;
          Table.cell_int (int_of_float rj.Kv.throughput);
          Table.cell_int (int_of_float rjt.Kv.throughput);
          Table.cell_int (int_of_float r6.Kv.throughput);
          Table.cell_int (int_of_float r1.Kv.throughput);
        ])
      client_counts
  in
  List.iter (Table.add_row t) rows;
  Table.print t;

  section "Figure 10b: SET throughput vs clients (M1)";
  let t =
    Table.create ~title:"requests/second"
      [ ("clients", Table.Right); ("RedisJMP", Table.Right); ("Redis", Table.Right) ]
  in
  let rows =
    par_map
      (fun clients ->
        let rj = run_mode ~clients ~set_fraction:1.0 (Kv.Redisjmp { tags = false }) in
        let r1 = run_mode ~clients ~set_fraction:1.0 (Kv.Redis { instances = 1 }) in
        [
          string_of_int clients;
          Table.cell_int (int_of_float rj.Kv.throughput);
          Table.cell_int (int_of_float r1.Kv.throughput);
        ])
      client_counts
  in
  List.iter (Table.add_row t) rows;
  Table.print t;

  section "Figure 10c: throughput vs SET fraction (12 clients, M1)";
  let t =
    Table.create ~title:"requests/second"
      [
        ("SET %", Table.Right);
        ("RedisJMP GET/SET", Table.Right);
        ("Redis GET/SET", Table.Right);
      ]
  in
  let rows =
    par_map
      (fun pct ->
        let f = float_of_int pct /. 100.0 in
        let rj = run_mode ~clients:12 ~set_fraction:f (Kv.Redisjmp { tags = false }) in
        let r1 = run_mode ~clients:12 ~set_fraction:f (Kv.Redis { instances = 1 }) in
        [
          string_of_int pct;
          Table.cell_int (int_of_float rj.Kv.throughput);
          Table.cell_int (int_of_float r1.Kv.throughput);
        ])
      [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
  in
  List.iter (Table.add_row t) rows;
  Table.print t;
  (* The sec 5.3 text also reports TLB-miss and switch rates. *)
  let rj1 = run_mode ~clients:1 ~set_fraction:0.0 (Kv.Redisjmp { tags = false }) in
  let rj1t = run_mode ~clients:1 ~set_fraction:0.0 (Kv.Redisjmp { tags = true }) in
  note "TLB misses/sec, 1 client: %.1fM untagged vs %.1fM tagged (paper: 8.9M vs 2.8M)"
    (float_of_int rj1.Kv.tlb_misses /. rj1.Kv.seconds /. 1e6)
    (float_of_int rj1t.Kv.tlb_misses /. rj1t.Kv.seconds /. 1e6);
  note "switches = 2x requests: %d switches for %d requests" rj1.Kv.switches rj1.Kv.requests
